"""64-bit fixed-point keyspace: exact modular ring geometry.

The ring's geometry-bearing layers (partitions, routing, the batch
engine) historically computed clockwise distances with float arithmetic
on ``[0, 1)``. Subtractive float arithmetic rounds: a key separated from
``0.1`` by ``1.4e-45`` measures a clockwise distance of *exactly*
``0.9``, so the metric (``cw_distance``) and the comparison-based
predicate (``in_cw_interval``) could disagree about boundary membership.
Two real bugs came from exactly that class — a wrapped-range
inconsistency between ``chord.scatter_range`` and
``DistributedIndex.range`` (PR 2) and a ``PartitionTable.partition_of``
failure at the far-end border (PR 3).

This module removes the class instead of patching instances: keys are
``uint64`` points on a circle of size ``2**64``, where modular
arithmetic is *exact and total* — ``cw_distance(a, b)`` is plain
wrapping subtraction, and ``in_cw_interval`` is **defined** through it,
so metric and predicate agree by construction. Every scalar operation
has a vectorized numpy ``uint64`` twin that is bit-equivalent (asserted
by tests over 10^6 random pairs), and integer subtraction is also
cheaper than float ``%`` on the batched hot path.

Adapter contract (``from_unit`` / ``to_unit``)
----------------------------------------------

Workloads, experiments and stored artifacts keep their float ``[0, 1)``
interface; conversion happens once at the API edge:

* ``from_unit(x)`` is the exact ``floor(x * 2**64)`` — computed in
  integer arithmetic, never through a rounding float multiply. It is
  monotone, so float comparisons and key comparisons always agree, and
  it is *lossless* for every float ``x >= 2**-11`` (whose ulp is at
  least the ``2**-64`` cell width): ``to_unit(from_unit(x)) == x``.
  Floats below ``2**-11`` (including denormals) are quantized onto the
  ``2**-64`` grid — the keyspace's resolution limit, which
  :class:`~repro.ring.ring.Ring` enforces as a position-uniqueness rule.
* ``to_unit(k)`` is the correctly-rounded ``k / 2**64``, clamped into
  ``[0, 1)``. It is a *section* of ``from_unit`` on its image:
  ``from_unit(to_unit(from_unit(x))) == from_unit(x)`` for every float
  ``x``, and ``from_unit(to_unit(k)) == k`` whenever ``k / 2**64`` is
  exactly representable (all ``k < 2**53`` and all multiples of
  ``2**11``).

Scalar keys are plain Python ints (no numpy scalar types leak out);
array kernels take and return ``numpy.uint64`` arrays.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = [
    "KEY_BITS",
    "KEY_MOD",
    "KEY_MASK",
    "KEY_DTYPE",
    "RESOLUTION",
    "Key",
    "KeyspaceError",
    "check_key",
    "from_unit",
    "to_unit",
    "cw_distance",
    "ccw_distance",
    "in_cw_interval",
    "midpoint",
    "cw_rank_key",
    "from_units",
    "to_units",
    "cw_distances",
    "in_cw_intervals",
]

#: Width of a key in bits; the circle has ``2**KEY_BITS`` cells.
KEY_BITS = 64

#: Size of the circle (one full clockwise revolution).
KEY_MOD = 1 << KEY_BITS

#: Mask implementing ``% KEY_MOD`` for Python-int arithmetic.
KEY_MASK = KEY_MOD - 1

#: Dtype of all vectorized key kernels.
KEY_DTYPE = np.dtype(np.uint64)

#: Width of one key cell on the unit circle (``2**-64``). Two floats
#: closer than this can land on the same key.
RESOLUTION = 1.0 / KEY_MOD

#: A point on the fixed-point circle: an int in ``[0, 2**64)``.
Key = int

#: Largest float strictly below 1.0 — ``to_unit``'s clamp value.
_ONE_BELOW_ONE = math.nextafter(1.0, 0.0)

#: ``2.0**64`` (exactly representable); the vectorized adapter scale.
_SCALE = float(KEY_MOD)


class KeyspaceError(ValueError):
    """A key fell outside its domain or was not a finite number.

    Raised for floats outside ``[0, 1)`` (or non-finite) and for ints
    outside ``[0, 2**64)``. Defined here and re-exported by
    :mod:`repro.ring.identifiers` for backwards compatibility.
    """


def check_key(key: int, name: str = "key") -> int:
    """Validate an integer key, returning it as a plain Python int."""
    k = int(key)
    if not 0 <= k < KEY_MOD:
        raise KeyspaceError(f"{name} must be in [0, 2**64), got {key!r}")
    return k


def _check_unit(value: float, name: str) -> float:
    if not math.isfinite(value):
        raise KeyspaceError(f"{name} must be finite, got {value!r}")
    if not 0.0 <= value < 1.0:
        raise KeyspaceError(f"{name} must be in [0, 1), got {value!r}")
    return value


# ----------------------------------------------------------------------
# float <-> key adapters
# ----------------------------------------------------------------------


def from_unit(value: float, name: str = "key") -> Key:
    """Exact ``floor(value * 2**64)`` for a float in ``[0, 1)``.

    Computed from the float's exact integer ratio, so no intermediate
    rounding occurs — denormals quantize to the true grid cell rather
    than to whatever a float multiply happens to produce.
    """
    _check_unit(value, name)
    numerator, denominator = float(value).as_integer_ratio()
    if denominator <= KEY_MOD:  # value is on (or coarser than) the grid
        return numerator * (KEY_MOD // denominator)
    return numerator // (denominator // KEY_MOD)  # exact floor; value > 0


def to_unit(key: Key) -> float:
    """Correctly-rounded ``key / 2**64``, clamped into ``[0, 1)``.

    The clamp matters only for the topmost ``2**10`` keys, whose exact
    quotients round to 1.0 — they map to the largest float below 1.0 so
    the result always stays a valid unit-circle key.
    """
    quotient = check_key(key) / KEY_MOD  # int/int division rounds correctly
    return _ONE_BELOW_ONE if quotient >= 1.0 else quotient


# ----------------------------------------------------------------------
# scalar geometry (exact, total)
# ----------------------------------------------------------------------


def cw_distance(a: Key, b: Key) -> Key:
    """Clockwise distance from ``a`` to ``b``: the unique ``d`` in
    ``[0, 2**64)`` with ``(a + d) % 2**64 == b``. Exact — no rounding,
    no clamp, no edge cases."""
    return (b - a) & KEY_MASK


def ccw_distance(a: Key, b: Key) -> Key:
    """Counter-clockwise distance from ``a`` to ``b`` (equals
    ``cw_distance(b, a)``)."""
    return (a - b) & KEY_MASK


def in_cw_interval(key: Key, start: Key, end: Key) -> bool:
    """Membership of ``key`` in the clockwise interval ``(start, end]``.

    Defined *through the metric*: ``key`` is inside iff its clockwise
    distance from ``start`` is positive and does not exceed the
    interval's span. Because the metric is exact, metric and predicate
    cannot disagree — the float-era bug class this module exists to
    kill. ``start == end`` denotes the whole circle (Chord's single-node
    convention), matching :func:`repro.ring.identifiers.in_cw_interval`.
    """
    if start == end:
        return True
    return 0 < ((key - start) & KEY_MASK) <= ((end - start) & KEY_MASK)


def midpoint(a: Key, b: Key) -> Key:
    """The key halfway along the clockwise arc from ``a`` to ``b``
    (rounded toward ``a`` when the span is odd)."""
    return (a + (((b - a) & KEY_MASK) >> 1)) & KEY_MASK


def cw_rank_key(origin: Key, keys: "Iterable[Key]", rank: int) -> Key:
    """The key at 0-indexed clockwise ``rank`` from ``origin``.

    ``rank == (len(keys) - 1) // 2`` gives the lower median in clockwise
    order — the exact-order-statistic primitive behind Oscar's partition
    borders. Ties (duplicate keys) keep input order (stable sort).
    """
    ordered = sorted(keys, key=lambda k: (k - origin) & KEY_MASK)
    if not ordered:
        raise KeyspaceError("cw_rank_key needs at least one key")
    if not 0 <= rank < len(ordered):
        raise KeyspaceError(f"rank must be in [0, {len(ordered)}), got {rank}")
    return ordered[rank]


# ----------------------------------------------------------------------
# vectorized kernels (numpy uint64) — bit-equivalent to the scalars
# ----------------------------------------------------------------------


def from_units(values: "np.ndarray | Iterable[float]") -> np.ndarray:
    """Vectorized :func:`from_unit`.

    ``x * 2.0**64`` is a power-of-two scale — exact for every float in
    ``[0, 1)`` — and the uint64 cast truncates toward zero, so the kernel
    is the same exact floor as the scalar (property-tested on 10^6
    values including denormals).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size and (
        not np.isfinite(arr).all() or (arr < 0.0).any() or (arr >= 1.0).any()
    ):
        raise KeyspaceError("all values must be finite and in [0, 1)")
    return (arr * _SCALE).astype(np.uint64)


def to_units(keys: "np.ndarray | Iterable[int]") -> np.ndarray:
    """Vectorized :func:`to_unit` (round-to-nearest then exact scale,
    clamped below 1.0)."""
    arr = np.asarray(keys, dtype=np.uint64)
    out = arr.astype(np.float64) / _SCALE
    return np.minimum(out, _ONE_BELOW_ONE)


def cw_distances(origin: "Key | np.uint64", keys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`cw_distance` from one origin to many keys
    (wrapping uint64 subtraction — exact, branch-free)."""
    arr = np.asarray(keys, dtype=np.uint64)
    return arr - np.uint64(origin)


def in_cw_intervals(
    keys: np.ndarray,
    start: "np.ndarray | Key",
    end: "np.ndarray | Key",
) -> np.ndarray:
    """Vectorized :func:`in_cw_interval` (broadcasting; ``start == end``
    elements denote the whole circle)."""
    keys_arr = np.asarray(keys, dtype=np.uint64)
    start_arr = np.asarray(start, dtype=np.uint64)
    end_arr = np.asarray(end, dtype=np.uint64)
    distance = keys_arr - start_arr
    span = end_arr - start_arr
    zero = np.uint64(0)
    return (start_arr == end_arr) | ((distance > zero) & (distance <= span))
