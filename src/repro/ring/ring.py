"""The ring substrate: a sorted circle of peers with liveness tracking.

The :class:`Ring` is the ground-truth membership structure shared by the
Oscar overlay, the Mercury baseline, the samplers and the experiment
harness. It stores, for every peer that ever joined, a unique position on
the unit circle and an alive/dead flag; it answers successor/predecessor
and clockwise-range queries in ``O(log N)`` using cached sorted arrays.

Design notes
------------

* **Positions are unique.** Joins with a colliding position are rejected
  with :class:`~repro.errors.DuplicateNodeError`; callers draw a fresh key
  (collisions of continuous keys have probability ~0 but a float can
  repeat, so the overlay perturbs and retries). Distinct floats closer
  than keyspace resolution (``2**-64``) are *allowed* and share a key
  cell: the sorted ``uint64`` key array is then weakly increasing, and
  key-space interval checks treat the tied peers as one point — the
  degenerate whole-circle convention makes the ring hop between them,
  so routing still terminates (property-tested with denormal
  positions).
* **Crashes mark, never remove.** Failure injection flips the alive flag;
  dead peers stay in the structure so that long-range links pointing at
  them can be discovered as dangling by the fault-aware router, exactly
  like a timed-out probe in a deployed system.
* **Struct-of-arrays state.** Per-peer facts (position, exact ``uint64``
  key, liveness) live in a shared :class:`~repro.core.soa.SubstrateState`
  — flat arrays indexed by slot — and the ring maintains only the sorted
  clockwise *order* of slots. Overlays pass their state in so node views
  and ring queries read the same cells; a stand-alone ``Ring()`` owns a
  private state. Sorted position/id/key arrays (all peers, and
  live-only) are cached and invalidated on mutation, so the hot lookups
  used by sampling, link acquisition and the batch engine are
  vectorized.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from ..errors import DuplicateNodeError, EmptyPopulationError, RingInvariantError, UnknownNodeError
from ..types import NodeId
from . import keyspace
from .identifiers import _check  # shared range validation

if TYPE_CHECKING:
    from ..core.soa import SubstrateState

__all__ = ["Ring"]


class Ring:
    """A circle of peers ordered by their key-space position."""

    def __init__(self, state: "SubstrateState | None" = None) -> None:
        if state is None:
            from ..core.soa import SubstrateState

            state = SubstrateState()
        self.state = state
        self._sorted_slots = np.empty(0, dtype=np.int64)
        self._sorted_pos = np.empty(0, dtype=np.float64)
        # Cached (positions, ids, keys, slots) tuples; see _arrays().
        self._cache_all: tuple[np.ndarray, ...] | None = None
        self._cache_live: tuple[np.ndarray, ...] | None = None
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic membership counter, bumped by every insert / crash /
        revival. Derived structures (e.g. the batch engine's successor
        cache) compare versions instead of subscribing to callbacks."""
        return self._version

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def insert(self, node_id: NodeId, position: float) -> None:
        """Add a live peer at ``position``.

        Raises :class:`DuplicateNodeError` if the id is already present or
        the position is occupied (positions must be unique for the
        clockwise order to be total).
        """
        _check(position, "position")
        key = keyspace.from_unit(position, "position")
        if self.state.slot_of(node_id) >= 0:
            raise DuplicateNodeError(f"node {node_id} already joined")
        idx = int(np.searchsorted(self._sorted_pos, position, side="left"))
        if idx < self._sorted_pos.size and self._sorted_pos[idx] == position:
            occupant = int(self.state.node_id[self._sorted_slots[idx]])
            raise DuplicateNodeError(f"position {position!r} already occupied by node {occupant}")
        slot = self.state.alloc_one(int(node_id), float(position), key)
        self._sorted_slots = np.insert(self._sorted_slots, idx, slot)
        self._sorted_pos = np.insert(self._sorted_pos, idx, position)
        self._version += 1
        self._invalidate()

    def insert_many(self, items: "Iterable[tuple[NodeId, float]]") -> None:
        """Bulk-add live peers in one sorted merge.

        Equivalent to calling :meth:`insert` per pair (same uniqueness
        rules, same keys — the vectorized ``from_units`` adapter is
        bit-equal to the scalar one) but ``O((N + K) log (N + K))``
        instead of the ``O(N)``-per-insert splicing, which is what
        makes million-peer bulk construction feasible. Validation happens
        before any mutation: a duplicate id or position raises
        :class:`DuplicateNodeError` and leaves the ring untouched.
        """
        pairs = list(items)
        if not pairs:
            return
        new_ids = [int(node_id) for node_id, __ in pairs]
        new_pos = np.array([pos for __, pos in pairs], dtype=float)
        for position in new_pos:
            _check(float(position), "position")
        if len(set(new_ids)) != len(new_ids):
            raise DuplicateNodeError("bulk insert contains a repeated node id")
        for node_id in new_ids:
            if self.state.slot_of(node_id) >= 0:
                raise DuplicateNodeError(f"node {node_id} already joined")
        order = np.argsort(new_pos, kind="stable")
        sorted_new = new_pos[order]
        if sorted_new.size > 1 and bool((sorted_new[1:] == sorted_new[:-1]).any()):
            raise DuplicateNodeError("bulk insert contains a repeated position")
        existing = self._sorted_pos
        if existing.size:
            at = np.searchsorted(existing, sorted_new, side="left")
            hit = (at < existing.size) & (existing[np.minimum(at, existing.size - 1)] == sorted_new)
            if bool(hit.any()):
                taken = float(sorted_new[np.nonzero(hit)[0][0]])
                occupant_slot = self._sorted_slots[int(np.searchsorted(existing, taken, side="left"))]
                raise DuplicateNodeError(
                    f"position {taken!r} already occupied by node "
                    f"{int(self.state.node_id[occupant_slot])}"
                )
        new_keys = keyspace.from_units(new_pos)  # bit-equal to scalar from_unit
        slots = self.state.alloc_many(
            np.asarray(new_ids, dtype=np.int64), new_pos, new_keys.astype(np.uint64)
        )
        merged_pos = np.concatenate([existing, new_pos])
        merged_slots = np.concatenate([self._sorted_slots, slots])
        merge_order = np.argsort(merged_pos, kind="stable")
        self._sorted_pos = merged_pos[merge_order]
        self._sorted_slots = merged_slots[merge_order]
        self._version += len(pairs)
        self._invalidate()

    def remove_many(self, node_ids: "Iterable[NodeId]") -> None:
        """Bulk-remove peers (live or dead) from the structure entirely.

        The teardown mirror of :meth:`insert_many`: one mask pass over
        the sorted order plus a free-list return of the slots, which is
        what keeps long steady-state churn runs memory-bounded — crashed
        peers are *marked* dead (so dangling links stay discoverable)
        and only compacted away here once periodic repair has rewired
        around them. Removed positions (and slots) become free again;
        slots are recycled smallest-first so fixed-seed runs have a
        deterministic physical layout.

        Validation happens before any mutation: an unknown or repeated
        id raises :class:`UnknownNodeError` / :class:`DuplicateNodeError`
        and leaves the ring untouched. Removing nothing is a no-op (no
        version bump).
        """
        ids = [int(node_id) for node_id in node_ids]
        if not ids:
            return
        if len(set(ids)) != len(ids):
            raise DuplicateNodeError("bulk remove contains a repeated node id")
        for node_id in ids:
            self._require_known(node_id)
        drop_slots = self.state.slots_of(np.asarray(ids, dtype=np.int64))
        flags = np.zeros(self.state.capacity, dtype=bool)
        flags[drop_slots] = True
        keep = ~flags[self._sorted_slots]
        self._sorted_slots = self._sorted_slots[keep]
        self._sorted_pos = self._sorted_pos[keep]
        self.state.free_many(drop_slots)
        self._version += len(ids)
        self._invalidate()

    def mark_dead(self, node_id: NodeId) -> None:
        """Crash a peer. Idempotent."""
        slot = self._require_known(node_id)
        if self.state.alive[slot]:
            self.state.alive[slot] = False
            self._version += 1
            self._cache_live = None

    def mark_alive(self, node_id: NodeId) -> None:
        """Revive a crashed peer (used by churn processes). Idempotent."""
        slot = self._require_known(node_id)
        if not self.state.alive[slot]:
            self.state.alive[slot] = True
            self._version += 1
            self._cache_live = None

    def is_alive(self, node_id: NodeId) -> bool:
        """Whether the peer is currently live."""
        slot = self._require_known(node_id)
        return bool(self.state.alive[slot])

    def __contains__(self, node_id: object) -> bool:
        return self.state.slot_of(node_id) >= 0

    def __len__(self) -> int:
        """Total number of peers ever joined (live + dead)."""
        return int(self._sorted_slots.size)

    @property
    def live_count(self) -> int:
        """Number of currently live peers."""
        __, ids, __k = self._arrays(live_only=True)
        return int(ids.size)

    def position(self, node_id: NodeId) -> float:
        """The unit-circle position of a peer (live or dead)."""
        slot = self._require_known(node_id)
        return float(self.state.pos[slot])

    def key_of(self, node_id: NodeId) -> int:
        """The exact fixed-point key of a peer (live or dead) — the
        ``uint64`` twin of :meth:`position`, converted once at insert."""
        slot = self._require_known(node_id)
        return int(self.state.key[slot])

    def node_ids(self, live_only: bool = False) -> list[NodeId]:
        """All node ids in clockwise (position) order."""
        __, ids, __k = self._arrays(live_only)
        return [int(i) for i in ids]

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.node_ids())

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def successor_of_key(self, key: float, live_only: bool = True) -> NodeId:
        """The peer responsible for ``key``: the first peer at or after it
        clockwise (Chord's ``successor(key)``)."""
        _check(key, "key")
        positions, ids, __ = self._arrays(live_only)
        if ids.size == 0:
            raise EmptyPopulationError("ring has no " + ("live " if live_only else "") + "peers")
        idx = int(np.searchsorted(positions, key, side="left"))
        return int(ids[idx % ids.size])

    def responsible_for(self, key: float, live_only: bool = True) -> NodeId:
        """Alias of :meth:`successor_of_key` — the data-placement rule."""
        return self.successor_of_key(key, live_only)

    def successor(self, node_id: NodeId, live_only: bool = True) -> NodeId:
        """The next peer clockwise after ``node_id`` (never itself, unless
        it is the only peer in scope)."""
        return self._neighbor(node_id, step=+1, live_only=live_only)

    def predecessor(self, node_id: NodeId, live_only: bool = True) -> NodeId:
        """The previous peer counter-clockwise before ``node_id``."""
        return self._neighbor(node_id, step=-1, live_only=live_only)

    def _neighbor(self, node_id: NodeId, step: int, live_only: bool) -> NodeId:
        pos = self.position(node_id)
        positions, ids, __ = self._arrays(live_only)
        if ids.size == 0:
            raise EmptyPopulationError("ring has no live peers")
        idx = int(np.searchsorted(positions, pos, side="left"))
        if idx >= ids.size or positions[idx] != pos or ids[idx] != node_id:
            # node is dead and excluded from the live view: walk from the
            # insertion point (its would-be slot).
            if step > 0:
                return int(ids[idx % ids.size])
            return int(ids[(idx - 1) % ids.size])
        return int(ids[(idx + step) % ids.size])

    # ------------------------------------------------------------------
    # clockwise ranges and ranks
    # ------------------------------------------------------------------

    def cw_range_size(self, start: float, end: float, live_only: bool = True) -> int:
        """Number of peers with positions in the clockwise interval
        ``(start, end]`` (the whole circle when ``start == end``)."""
        base, count, __ = self._range_span(start, end, live_only)
        del base
        return count

    def ids_in_cw_range(self, start: float, end: float, live_only: bool = True) -> np.ndarray:
        """Node ids with positions in clockwise ``(start, end]``, in
        clockwise order starting just after ``start``."""
        base, count, ids = self._range_span(start, end, live_only)
        if count == 0:
            return np.empty(0, dtype=ids.dtype)
        idx = (base + np.arange(count)) % ids.size
        return ids[idx]

    def choose_in_cw_range(
        self,
        rng: np.random.Generator,
        start: float,
        end: float,
        k: int = 1,
        live_only: bool = True,
    ) -> np.ndarray:
        """Draw ``k`` peers uniformly (with replacement) from clockwise
        ``(start, end]`` without materializing the range.

        Returns an empty array when the range holds no peers — callers
        treat that as "partition currently empty, redraw".
        """
        base, count, ids = self._range_span(start, end, live_only)
        if count == 0:
            return np.empty(0, dtype=int)
        offsets = rng.integers(0, count, size=k)
        return ids[(base + offsets) % ids.size]

    def position_at_cw_rank(self, origin: float, rank: int, live_only: bool = True) -> float:
        """Position of the peer at clockwise rank ``rank`` from ``origin``.

        Rank 1 is the first peer strictly after ``origin``; rank ``n``
        wraps all the way around. Used by the oracle partitioner to read
        exact median borders in ``O(log N)``.
        """
        positions, __, __k = self._arrays(live_only)
        n = positions.size
        if n == 0:
            raise EmptyPopulationError("ring has no live peers")
        if not 1 <= rank <= n:
            raise ValueError(f"rank must be in [1, {n}], got {rank}")
        base = int(np.searchsorted(positions, origin, side="right"))
        return float(positions[(base + rank - 1) % n])

    def cw_rank_of(self, origin: float, node_id: NodeId, live_only: bool = True) -> int:
        """Clockwise rank of ``node_id`` as seen from ``origin`` (>= 1)."""
        positions, ids, __ = self._arrays(live_only)
        if ids.size == 0:
            raise EmptyPopulationError("ring has no live peers")
        pos = self.position(node_id)
        idx = int(np.searchsorted(positions, pos, side="left"))
        if idx >= ids.size or ids[idx] != node_id:
            raise UnknownNodeError(node_id)
        base = int(np.searchsorted(positions, origin, side="right"))
        return (idx - base) % ids.size + 1

    def positions_array(self, live_only: bool = False) -> np.ndarray:
        """Sorted copy of all peer positions (read-only view semantics:
        callers must not mutate)."""
        positions, __, __k = self._arrays(live_only)
        return positions

    def ids_array(self, live_only: bool = False) -> np.ndarray:
        """Node ids sorted by position, aligned with :meth:`positions_array`."""
        __, ids, __k = self._arrays(live_only)
        return ids

    def keys_array(self, live_only: bool = False) -> np.ndarray:
        """Exact ``uint64`` keys aligned with :meth:`positions_array`
        (weakly increasing: floats closer than ``2**-64`` share a key
        cell)."""
        __, __i, keys = self._arrays(live_only)
        return keys

    def slots_array(self, live_only: bool = False) -> np.ndarray:
        """Physical slots (rows into the substrate state's arrays) in
        clockwise order, aligned with :meth:`positions_array`. This is
        the bridge the array kernels use to read per-peer columns
        without building node views."""
        cache = self._tuples(live_only)
        return cache[3]

    # ------------------------------------------------------------------
    # structural verification
    # ------------------------------------------------------------------

    def verify(self) -> None:
        """Check the ring/state structural invariants, raising
        :class:`~repro.errors.RingInvariantError` on the first violation:

        * the clockwise order is strictly increasing in position and
          mirrors the state's position cells exactly;
        * every ordered slot is allocated (``node_id >= 0``) and the
          id -> slot map is its exact inverse;
        * the cached live view agrees with the liveness bitmap;
        * free slots are genuinely cleared (``node_id == -1``).
        """
        state = self.state
        slots = self._sorted_slots
        if slots.size != len(set(int(s) for s in slots)):
            raise RingInvariantError("clockwise order repeats a slot")
        pos = state.pos[slots]
        if not np.array_equal(pos, self._sorted_pos):
            raise RingInvariantError("sorted position cache diverged from state positions")
        if pos.size > 1 and not bool((pos[1:] > pos[:-1]).all()):
            raise RingInvariantError("clockwise order is not strictly increasing")
        ids = state.node_id[slots]
        if bool((ids < 0).any()):
            raise RingInvariantError("clockwise order references a freed slot")
        back = state.slots_of(ids)
        if not np.array_equal(back, slots):
            raise RingInvariantError("id -> slot map is not the inverse of the order")
        live_ids = self.ids_array(live_only=True)
        bitmap_ids = np.sort(ids[state.alive[slots]])
        if not np.array_equal(np.sort(live_ids), bitmap_ids):
            raise RingInvariantError("live cache disagrees with the liveness bitmap")
        for free_slot in state._free:
            if state.node_id[free_slot] != -1:
                raise RingInvariantError(f"free slot {free_slot} still holds a peer")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _require_known(self, node_id: NodeId) -> int:
        slot = self.state.slot_of(node_id)
        if slot < 0:
            raise UnknownNodeError(node_id)
        return slot

    def _invalidate(self) -> None:
        self._cache_all = None
        self._cache_live = None

    def _tuples(self, live_only: bool) -> tuple[np.ndarray, ...]:
        state = self.state
        if live_only:
            if self._cache_live is None:
                mask = state.alive[self._sorted_slots]
                slots = self._sorted_slots[mask]
                self._cache_live = (
                    self._sorted_pos[mask],
                    state.node_id[slots],
                    state.key[slots],
                    slots,
                )
            return self._cache_live
        if self._cache_all is None:
            slots = self._sorted_slots
            self._cache_all = (
                self._sorted_pos.copy(),
                state.node_id[slots],
                state.key[slots],
                slots.copy(),
            )
        return self._cache_all

    def _arrays(self, live_only: bool) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        positions, ids, keys, __ = self._tuples(live_only)
        return positions, ids, keys

    def _range_span(self, start: float, end: float, live_only: bool) -> tuple[int, int, np.ndarray]:
        """Return ``(base_index, count, ids_array)`` describing clockwise
        ``(start, end]`` as a contiguous (mod n) span of the sorted order."""
        _check(start, "start")
        _check(end, "end")
        positions, ids, __ = self._arrays(live_only)
        n = positions.size
        if n == 0:
            return 0, 0, ids
        lo = int(np.searchsorted(positions, start, side="right"))
        hi = int(np.searchsorted(positions, end, side="right"))
        if start < end:
            return lo, hi - lo, ids
        if start == end:  # whole circle
            return lo % n, n, ids
        return lo, (n - lo) + hi, ids
