"""Ring substrate: circular key space, peer ring, and maintenance.

Public surface:

* :mod:`repro.ring.identifiers` — clockwise arithmetic on ``[0, 1)``;
* :class:`repro.ring.Ring` — the sorted, liveness-aware peer circle;
* :mod:`repro.ring.maintenance` — Chord-style pointer repair the paper
  assumes survives churn.
"""

from .identifiers import (
    KeyspaceError,
    ccw_distance,
    circular_distance,
    cw_distance,
    cw_distances,
    cw_midpoint,
    in_cw_interval,
    normalize,
)
from .maintenance import RingPointers, attach_node, build_pointers, repair, verify
from .ring import Ring

__all__ = [
    "KeyspaceError",
    "Ring",
    "RingPointers",
    "attach_node",
    "build_pointers",
    "ccw_distance",
    "circular_distance",
    "cw_distance",
    "cw_distances",
    "cw_midpoint",
    "in_cw_interval",
    "normalize",
    "repair",
    "verify",
]
