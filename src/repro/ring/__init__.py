"""Ring substrate: circular key space, peer ring, and maintenance.

Public surface:

* :mod:`repro.ring.keyspace` — exact 64-bit fixed-point modular
  geometry (``uint64`` keys, circle ``2**64``) plus the lossless-where-
  possible ``float ↔ Key`` adapters; the vectorized arithmetic core of
  the batched routing hot path;
* :mod:`repro.ring.identifiers` — the float ``[0, 1)`` edge API whose
  comparison-exact predicates the scalar layers (partitions, routing,
  medians) decide with;
* :class:`repro.ring.Ring` — the sorted, liveness-aware peer circle;
* :mod:`repro.ring.maintenance` — Chord-style pointer repair the paper
  assumes survives churn.
"""

from . import keyspace
from .identifiers import (
    KeyspaceError,
    ccw_distance,
    circular_distance,
    cw_distance,
    cw_distances,
    cw_midpoint,
    in_closed_cw_range,
    in_cw_interval,
    normalize,
)
from .maintenance import (
    RingPointers,
    attach_node,
    build_pointers,
    rebuild_pointers,
    repair,
    repair_all,
    verify,
)
from .ring import Ring

__all__ = [
    "KeyspaceError",
    "Ring",
    "RingPointers",
    "attach_node",
    "build_pointers",
    "ccw_distance",
    "circular_distance",
    "cw_distance",
    "cw_distances",
    "cw_midpoint",
    "in_closed_cw_range",
    "in_cw_interval",
    "keyspace",
    "normalize",
    "rebuild_pointers",
    "repair",
    "repair_all",
    "verify",
]
