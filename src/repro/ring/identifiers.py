"""Circular identifier-space arithmetic on the unit circle ``[0, 1)``.

Oscar, Mercury and the ring substrate all reason about *clockwise*
distances on the key circle (Chord orientation: increasing key values,
wrapping at 1.0). This module is the single home of that arithmetic so
wrap-around corner cases are handled once and property-tested once.

Conventions used throughout the library:

* keys and positions are floats in ``[0, 1)``;
* ``cw_distance(a, b)`` is how far one travels clockwise from ``a`` to
  reach ``b`` — it is zero iff ``a == b`` and is **not** symmetric;
* intervals are clockwise-open/closed ``(a, b]`` unless stated otherwise,
  matching Chord's "successor owns the key" rule.

Exactness caveat — and how each layer stays exact
-------------------------------------------------

Float *comparisons* are exact, so :func:`in_cw_interval`,
:func:`in_closed_cw_range` and the clockwise order they induce are
exact at full float resolution; float *subtraction* rounds, so
:func:`cw_distance` can collapse denormal-scale separations (key
``1.4e-45`` with origin ``0.1`` measures exactly ``0.9``) and
metric/predicate verdicts can disagree at boundaries. Geometry
*decisions* therefore never use the subtractive metric: the scalar
layers (partitions, estimators, routing, medians) decide with this
module's comparison predicates, while the batched hot path computes on
:mod:`repro.ring.keyspace` — exact ``uint64`` fixed-point modular
arithmetic, bit-identical to the comparison rules whenever positions
occupy distinct ``2**-64`` cells. ``cw_distance`` remains the
measurement/diagnostic metric of the float ``[0, 1)`` edge API.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .keyspace import KeyspaceError

__all__ = [
    "normalize",
    "cw_distance",
    "ccw_distance",
    "circular_distance",
    "in_cw_interval",
    "in_closed_cw_range",
    "cw_midpoint",
    "cw_distances",
    "KeyspaceError",
]


def _check(key: float, name: str = "key") -> float:
    if not math.isfinite(key):
        raise KeyspaceError(f"{name} must be finite, got {key!r}")
    if not 0.0 <= key < 1.0:
        raise KeyspaceError(f"{name} must be in [0, 1), got {key!r}")
    return key


def normalize(value: float) -> float:
    """Map any finite float onto the unit circle.

    ``normalize(1.25) == 0.25``, ``normalize(-0.25) == 0.75``. Exact
    multiples of 1.0 map to 0.0.
    """
    if not math.isfinite(value):
        raise KeyspaceError(f"cannot normalize non-finite value {value!r}")
    wrapped = value % 1.0
    # Python guarantees 0 <= x % 1.0 < 1.0 except that the result may be
    # exactly 1.0 - eps rounding to 1.0 for some pathological inputs; guard.
    if wrapped >= 1.0:
        wrapped = 0.0
    return wrapped


def cw_distance(a: float, b: float) -> float:
    """Clockwise distance from ``a`` to ``b``: the unique ``d in [0, 1)``
    with ``normalize(a + d) == b`` (up to float rounding).

    Guards a float edge: for ``b`` infinitesimally counter-clockwise of
    ``a`` the modulo rounds to exactly 1.0, which would escape the
    half-open range; such distances clamp to the largest float < 1.
    """
    _check(a, "a")
    _check(b, "b")
    d = (b - a) % 1.0
    if d >= 1.0:  # only reachable through rounding; a != b here
        return math.nextafter(1.0, 0.0)
    return d


def ccw_distance(a: float, b: float) -> float:
    """Counter-clockwise distance from ``a`` to ``b`` (equals
    ``cw_distance(b, a)``)."""
    return cw_distance(b, a)


def circular_distance(a: float, b: float) -> float:
    """Shortest-arc distance between ``a`` and ``b`` (symmetric, <= 0.5)."""
    d = cw_distance(a, b)
    return min(d, 1.0 - d) if d != 0.0 else 0.0


def in_cw_interval(key: float, start: float, end: float) -> bool:
    """Membership of ``key`` in the clockwise-open/closed interval
    ``(start, end]``.

    Implemented with direct comparisons (no modular arithmetic) so it is
    *exact*: subtractive distance computations lose denormal-scale
    separations to rounding, which would let a key test positive in both
    halves of a split circle.

    Degenerate case: when ``start == end`` the interval is the *entire*
    circle (clockwise from a point all the way around back to itself),
    matching Chord's convention for a single-node ring.
    """
    _check(key, "key")
    _check(start, "start")
    _check(end, "end")
    if start == end:
        return True
    if start < end:
        return start < key <= end
    return key > start or key <= end


def in_closed_cw_range(key: float, lo: float, hi: float) -> bool:
    """Membership of ``key`` in the *closed* application range ``[lo, hi]``.

    ``lo > hi`` wraps through 1.0; ``lo == hi`` is the point range (not
    the whole circle — that convention belongs to the ``(start, end]``
    overlay interval of :func:`in_cw_interval`). This is the one
    definition shared by ``DistributedIndex.range`` and
    ``chord.scatter_range``: PR 2 fixed those two disagreeing about a
    key exactly at ``lo`` of a wrapped range, and keeping a single
    predicate is what stops that bug class from reopening.
    """
    _check(key, "key")
    _check(lo, "lo")
    _check(hi, "hi")
    if lo == hi:
        return key == lo
    return key == lo or in_cw_interval(key, lo, hi)


def cw_midpoint(a: float, b: float) -> float:
    """The point halfway along the clockwise arc from ``a`` to ``b``."""
    return normalize(a + cw_distance(a, b) / 2.0)


def cw_distances(origin: float, keys: "np.ndarray | Iterable[float]") -> np.ndarray:
    """Vectorized :func:`cw_distance` from one origin to many keys."""
    _check(origin, "origin")
    arr = np.asarray(list(keys) if not isinstance(keys, np.ndarray) else keys, dtype=float)
    if arr.size and ((arr < 0.0).any() or (arr >= 1.0).any()):
        raise KeyspaceError("all keys must be in [0, 1)")
    out = (arr - origin) % 1.0
    # Same rounding guard as the scalar version.
    out[out >= 1.0] = math.nextafter(1.0, 0.0)
    return out
