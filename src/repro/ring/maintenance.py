"""Chord-style ring maintenance: explicit successor/predecessor pointers.

The paper *assumes* that "the ring structure was preserved by the devised
self-stabilizing techniques (e.g. Chord ring maintenance algorithms)"
while long-range links are left dangling after crashes. This module
implements exactly that contract:

* :func:`build_pointers` wires every live peer to its live ring neighbors;
* :func:`repair` is the self-stabilization outcome — after failures it
  re-points any successor/predecessor that references a dead peer to the
  nearest live one, returning how many pointers had to change;
* :func:`verify` checks the two ring invariants (pointer closure over live
  peers, mutual successor/predecessor consistency) and raises
  :class:`~repro.errors.RingInvariantError` on violation.

Keeping the pointers explicit (rather than recomputing successors from the
sorted order on demand) makes the repair step observable and testable, and
lets the fault-aware router distinguish "ring link, always live after
repair" from "long link, possibly dangling".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EmptyPopulationError, RingInvariantError
from ..types import NodeId
from .ring import Ring

__all__ = [
    "RingPointers",
    "attach_node",
    "build_pointers",
    "rebuild_pointers",
    "repair",
    "repair_all",
    "verify",
]


@dataclass
class RingPointers:
    """Per-peer ring neighbor pointers (only meaningful for live peers)."""

    successor: dict[NodeId, NodeId] = field(default_factory=dict)
    predecessor: dict[NodeId, NodeId] = field(default_factory=dict)

    def copy(self) -> "RingPointers":
        """Deep-enough copy (new dicts, shared immutable ids)."""
        return RingPointers(dict(self.successor), dict(self.predecessor))


def build_pointers(ring: Ring) -> RingPointers:
    """Construct correct pointers for the current live population.

    A single live peer points at itself (the degenerate Chord ring).
    """
    live = ring.node_ids(live_only=True)
    if not live:
        raise EmptyPopulationError("cannot build ring pointers with no live peers")
    # zip over the rotated list — one C-level pass instead of N indexings.
    return RingPointers(
        successor=dict(zip(live, live[1:] + live[:1])),
        predecessor=dict(zip(live, live[-1:] + live[:-1])),
    )


def attach_node(ring: Ring, pointers: RingPointers, node_id: NodeId) -> None:
    """Splice a freshly joined live peer into maintained pointers.

    The Chord join step: the new peer adopts its geometric neighbors and
    they adopt it back. A first (sole) peer points at itself.
    """
    if ring.live_count == 1:
        pointers.successor[node_id] = node_id
        pointers.predecessor[node_id] = node_id
        return
    succ = ring.successor(node_id, live_only=True)
    pred = ring.predecessor(node_id, live_only=True)
    pointers.successor[node_id] = succ
    pointers.predecessor[node_id] = pred
    pointers.successor[pred] = node_id
    pointers.predecessor[succ] = node_id


def rebuild_pointers(ring: Ring, pointers: RingPointers) -> None:
    """Reset ``pointers`` *in place* to the correct live-ring wiring.

    The bulk counterpart of :func:`attach_node`: after a bulk membership
    change (:meth:`Ring.insert_many <repro.ring.ring.Ring.insert_many>`)
    one ``O(N)`` rebuild replaces K pointer splices. Mutating the given
    object (rather than returning a fresh one) keeps every holder of the
    pointers table — overlays, engines, cached snapshots — looking at
    the same instance.
    """
    fresh = build_pointers(ring)
    pointers.successor.clear()
    pointers.successor.update(fresh.successor)
    pointers.predecessor.clear()
    pointers.predecessor.update(fresh.predecessor)


def repair(ring: Ring, pointers: RingPointers) -> int:
    """Self-stabilize ``pointers`` after membership changes.

    Every live peer whose successor (resp. predecessor) is dead, missing
    or stale is re-pointed to its current live ring neighbor. Entries for
    dead peers are dropped. Returns the number of pointer entries that
    were added, changed or removed — 0 means the ring was already stable.
    """
    live = ring.node_ids(live_only=True)
    if not live:
        raise EmptyPopulationError("cannot repair a ring with no live peers")
    changes = 0
    correct_succ = dict(zip(live, live[1:] + live[:1]))
    correct_pred = dict(zip(live, live[-1:] + live[:-1]))

    for table, correct in ((pointers.successor, correct_succ), (pointers.predecessor, correct_pred)):
        for node in list(table):
            if node not in correct:  # owner died: drop its state
                del table[node]
                changes += 1
        for node, target in correct.items():
            if table.get(node) != target:
                table[node] = target
                changes += 1
    return changes


def repair_all(ring: Ring, pointers: RingPointers) -> int:
    """Bulk self-stabilization — :func:`repair` restated as one rebuild.

    Computes the correct live wiring once from the ring's sorted order
    and replaces both tables wholesale instead of probing them entry by
    entry, which is what the steady-state churn engine calls after every
    bulk departure wave. The returned change count (entries added,
    changed or removed) is **bit-identical** to :func:`repair` on the
    same state — the test suite pins the equivalence — so the two are
    interchangeable; this one is the bulk-departure hot path.
    """
    live = ring.node_ids(live_only=True)
    if not live:
        raise EmptyPopulationError("cannot repair a ring with no live peers")
    changes = 0
    for table, correct in (
        (pointers.successor, dict(zip(live, live[1:] + live[:1]))),
        (pointers.predecessor, dict(zip(live, live[-1:] + live[:-1]))),
    ):
        stale = len(table.keys() - correct.keys())
        if stale == 0 and table == correct:
            continue  # already stable — skip the per-entry diff entirely
        changed = sum(1 for node, target in correct.items() if table.get(node) != target)
        changes += stale + changed
        if stale or changed:
            table.clear()
            table.update(correct)
    return changes


def verify(ring: Ring, pointers: RingPointers) -> None:
    """Check ring invariants; raise :class:`RingInvariantError` on failure.

    Invariants checked:

    1. every live peer has successor and predecessor entries, and they
       reference live peers;
    2. the pointers agree with the geometric order of positions (each
       peer's successor is its true live clockwise neighbor);
    3. successor and predecessor are mutually inverse;
    4. no entries exist for dead or unknown peers.
    """
    live = ring.node_ids(live_only=True)
    live_set = set(live)
    n = len(live)
    for node in live:
        if node not in pointers.successor or node not in pointers.predecessor:
            raise RingInvariantError(f"live node {node} is missing ring pointers")
    for table_name, table in (("successor", pointers.successor), ("predecessor", pointers.predecessor)):
        for node, target in table.items():
            if node not in live_set:
                raise RingInvariantError(f"{table_name} entry for non-live node {node}")
            if target not in live_set:
                raise RingInvariantError(f"{table_name} of {node} points at non-live node {target}")
    for i, node in enumerate(live):
        expected = live[(i + 1) % n]
        actual = pointers.successor[node]
        if actual != expected:
            raise RingInvariantError(f"successor of {node} is {actual}, expected {expected}")
        if pointers.predecessor[expected] != node:
            raise RingInvariantError(
                f"predecessor of {expected} is {pointers.predecessor[expected]}, expected {node}"
            )
