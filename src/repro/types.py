"""Shared type aliases and protocols used across the library.

Centralizing these keeps signatures consistent between the Oscar core,
the Mercury baseline and the simulation harness, and gives downstream
users one place to look up the vocabulary of the public API.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    import numpy as np

__all__ = [
    "NodeId",
    "Key",
    "Seed",
    "KeySampler",
    "DegreeSampler",
    "RandomSource",
]

#: Opaque, stable identifier of a peer. Node ids are dense integers assigned
#: at join time and never reused, so they double as indices into per-node
#: arrays kept by the metrics layer.
NodeId = int

#: A point on the unit circle ``[0, 1)``. Peer positions and query targets
#: are both keys.
Key = float

#: Seed material accepted by :func:`repro.rng.make_rng` /
#: :func:`repro.rng.split`.
Seed = int


@runtime_checkable
class KeySampler(Protocol):
    """Anything that can draw keys in ``[0, 1)`` — see :mod:`repro.workloads`."""

    def sample(self, rng: "np.random.Generator", size: int) -> "np.ndarray":
        """Draw ``size`` keys; returns a float array with values in ``[0, 1)``."""
        ...


@runtime_checkable
class DegreeSampler(Protocol):
    """Anything that can draw per-peer degree caps — see :mod:`repro.degree`."""

    def sample(self, rng: "np.random.Generator", size: int) -> "np.ndarray":
        """Draw ``size`` integer degree caps (each >= 1)."""
        ...


@runtime_checkable
class RandomSource(Protocol):
    """The subset of :class:`numpy.random.Generator` the library relies on.

    Declared as a protocol so tests can substitute deterministic stubs
    without subclassing numpy internals.
    """

    def random(self, size: int | None = None) -> "float | np.ndarray": ...

    def integers(self, low: int, high: int | None = None, size: int | None = None) -> "int | np.ndarray": ...

    def choice(self, a: "Sequence | np.ndarray", size: int | None = None, replace: bool = True) -> object: ...

    def shuffle(self, x: "np.ndarray") -> None: ...


def ensure_node_ids(ids: Iterable[int]) -> list[int]:
    """Validate and normalize an iterable of node ids into a list.

    Raises :class:`TypeError` when an element is not an integer and
    :class:`ValueError` when an id is negative. Used by bulk operations
    (e.g. failure injection) to fail fast on malformed input.
    """
    out: list[int] = []
    for raw in ids:
        if isinstance(raw, bool) or not isinstance(raw, int):
            raise TypeError(f"node id must be an int, got {raw!r}")
        if raw < 0:
            raise ValueError(f"node id must be non-negative, got {raw}")
        out.append(raw)
    return out
