"""Message-level network simulation on the discrete-event kernel.

The topology experiments count messages; this package measures *time*.
Queries run as kernel processes over the overlay's real routes: every
hop queues at the target peer (a FIFO :class:`~repro.engine.Resource`
whose service rate is the peer's bandwidth) and then pays a propagation
delay. That makes peer **bandwidth heterogeneity** — the paper's
motivating constraint for letting peers choose their own degree caps —
observable as query latency:

* :class:`BandwidthModel` — per-peer service rates (uniform or matched
  to the peer's declared degree cap);
* :class:`LatencyModel` — seeded per-hop propagation delays;
* :class:`QuerySimulation` — Poisson query arrivals over an overlay,
  returning per-query latency samples.

The EXT-L experiment uses this to show *why* caps should track
bandwidth: a network that assigns every peer equal link load while
bandwidths vary queues up at its slow peers.
"""

from .model import BandwidthModel, LatencyModel
from .simulation import QueryLatencyStats, QuerySimulation

__all__ = [
    "BandwidthModel",
    "LatencyModel",
    "QueryLatencyStats",
    "QuerySimulation",
]
