"""Timing models: per-peer service rates and per-hop propagation.

Kept deliberately simple — single-server FIFO queue per peer, constant
mean propagation — because the *relative* comparison (bandwidth-aware
vs bandwidth-oblivious load placement) is what the EXT-L experiment
needs, not absolute milliseconds.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..rng import split
from ..types import NodeId

__all__ = ["BandwidthModel", "LatencyModel"]


class BandwidthModel:
    """Per-peer message service rates.

    A peer's bandwidth is expressed as a *rate* (messages per simulated
    second). Forwarding one message through a peer occupies its single
    server for ``1 / rate`` seconds, so slow peers queue under load.

    Args:
        rates: Mapping of node id to service rate (> 0).
    """

    def __init__(self, rates: dict[NodeId, float]) -> None:
        if not rates:
            raise ConfigError("BandwidthModel needs at least one peer rate")
        for node, rate in rates.items():
            if rate <= 0:
                raise ConfigError(f"service rate of node {node} must be > 0, got {rate}")
        self._rates = dict(rates)

    @classmethod
    def proportional_to_caps(
        cls, caps: dict[NodeId, int], rate_per_link: float = 1.0
    ) -> "BandwidthModel":
        """Bandwidth matched to declared degree caps (the Oscar story:
        peers *derived* their caps from their bandwidth, so a peer with
        twice the cap really is twice as fast)."""
        if rate_per_link <= 0:
            raise ConfigError(f"rate_per_link must be > 0, got {rate_per_link}")
        return cls({node: cap * rate_per_link for node, cap in caps.items()})

    @classmethod
    def uniform(cls, nodes: "list[NodeId]", rate: float) -> "BandwidthModel":
        """Every peer serves at the same rate (homogeneity assumption)."""
        return cls({node: rate for node in nodes})

    def rate(self, node: NodeId) -> float:
        """Service rate of ``node``; raises KeyError for unknown peers."""
        return self._rates[node]

    def service_time(self, node: NodeId) -> float:
        """Time ``node``'s server is busy per forwarded message."""
        return 1.0 / self._rates[node]

    def total_rate(self) -> float:
        """Aggregate service capacity of the system."""
        return float(sum(self._rates.values()))

    def __len__(self) -> int:
        return len(self._rates)


class LatencyModel:
    """Seeded propagation delays per directed link.

    Each ``(u, v)`` link gets an exponential delay with the configured
    mean, fixed at first use (links are stable network paths, so the
    same link always shows the same latency).
    """

    def __init__(self, mean_delay: float = 0.02, seed: int = 42) -> None:
        if mean_delay < 0:
            raise ConfigError(f"mean_delay must be >= 0, got {mean_delay}")
        self.mean_delay = mean_delay
        self._rng = split(seed, "simnet-latency")
        self._delay: dict[tuple[NodeId, NodeId], float] = {}

    def delay(self, src: NodeId, dst: NodeId) -> float:
        """Propagation delay of the directed link ``src -> dst``."""
        if self.mean_delay == 0.0:
            return 0.0
        key = (src, dst)
        found = self._delay.get(key)
        if found is None:
            found = float(self._rng.exponential(self.mean_delay))
            self._delay[key] = found
        return found

    def path_delay(self, path: "list[NodeId] | tuple[NodeId, ...]") -> float:
        """Total propagation along a node path (no queueing)."""
        return float(
            np.sum([self.delay(a, b) for a, b in zip(path, path[1:])])
            if len(path) > 1
            else 0.0
        )
