"""Query-latency simulation: Poisson arrivals over real overlay routes.

Each query is a kernel process replaying a route recorded from the
overlay's own router. At every intermediate hop the message must be
*forwarded*: it queues for the hop peer's single server, occupies it
for the peer's service time, then pays the link's propagation delay.
Queueing is where heterogeneity bites — a popular slow peer backs up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Sequence

import numpy as np

from ..engine import Environment, Event, Resource
from ..errors import ConfigError, EmptyPopulationError
from ..metrics import RoutableOverlay
from ..types import NodeId
from ..workloads import QueryWorkload
from .model import BandwidthModel, LatencyModel

__all__ = ["QueryLatencyStats", "QuerySimulation"]


@dataclass(frozen=True)
class QueryLatencyStats:
    """Latency summary over one simulation run.

    Attributes:
        n_queries: Completed queries.
        mean: Mean end-to-end latency (simulated seconds).
        p50: Median latency.
        p95: 95th-percentile latency (tail — what users feel).
        max: Worst query.
        mean_queue_wait: Mean time spent waiting in peer queues, the
            heterogeneity-mismatch signal.
    """

    n_queries: int
    mean: float
    p50: float
    p95: float
    max: float
    mean_queue_wait: float

    @classmethod
    def from_samples(
        cls, latencies: Sequence[float], queue_waits: Sequence[float]
    ) -> "QueryLatencyStats":
        if not latencies:
            raise EmptyPopulationError("no queries completed")
        arr = np.asarray(latencies, dtype=float)
        return cls(
            n_queries=arr.size,
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            max=float(arr.max()),
            mean_queue_wait=float(np.mean(queue_waits)),
        )


class QuerySimulation:
    """Run a Poisson query workload over an overlay, in simulated time.

    Args:
        overlay: Any routable overlay facade (Oscar / Mercury / Chord).
        bandwidth: Per-peer service rates.
        latency: Per-link propagation model.
        arrival_rate: Mean query arrivals per simulated second (the
            offered load; keep below the bottleneck service capacity or
            queues grow without bound — that, too, is measurable).
        seed: Stream label for arrivals and workload draws.
    """

    def __init__(
        self,
        overlay: RoutableOverlay,
        bandwidth: BandwidthModel,
        latency: LatencyModel,
        arrival_rate: float = 50.0,
        seed: int = 42,
    ) -> None:
        if arrival_rate <= 0:
            raise ConfigError(f"arrival_rate must be > 0, got {arrival_rate}")
        self.overlay = overlay
        self.bandwidth = bandwidth
        self.latency = latency
        self.arrival_rate = arrival_rate
        self.seed = seed
        self.latencies: list[float] = []
        self.queue_waits: list[float] = []

    # ------------------------------------------------------------------
    # kernel processes
    # ------------------------------------------------------------------

    def _query_process(
        self,
        env: Environment,
        servers: dict[NodeId, Resource],
        path: tuple[NodeId, ...],
    ) -> Generator[Event, object, None]:
        started = env.now
        queued = 0.0
        # The source emits for free; every subsequent hop must be
        # received, serviced and forwarded by its peer.
        for prev, node in zip(path, path[1:]):
            wait_started = env.now
            grant = servers[node].request()
            yield grant
            queued += env.now - wait_started
            yield env.timeout(self.bandwidth.service_time(node))
            servers[node].release()
            yield env.timeout(self.latency.delay(prev, node))
        self.latencies.append(env.now - started)
        self.queue_waits.append(queued)

    def _arrival_process(
        self,
        env: Environment,
        servers: dict[NodeId, Resource],
        paths: list[tuple[NodeId, ...]],
        rng: np.random.Generator,
    ) -> Generator[Event, object, None]:
        for path in paths:
            yield env.timeout(float(rng.exponential(1.0 / self.arrival_rate)))
            env.process(self._query_process(env, servers, path))

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def run(
        self,
        n_queries: int,
        workload: QueryWorkload | None = None,
        faulty: bool = False,
    ) -> QueryLatencyStats:
        """Simulate ``n_queries`` arrivals; returns the latency summary.

        Routes are resolved through the overlay's real router (with
        paths recorded), then replayed in simulated time. The run ends
        when every query has completed.
        """
        if n_queries < 1:
            raise ConfigError(f"n_queries must be >= 1, got {n_queries}")
        from ..rng import split

        rng = split(self.seed, "simnet-run")
        wl = workload if workload is not None else QueryWorkload()
        paths: list[tuple[NodeId, ...]] = []
        for query in wl.generate(self.overlay.ring, rng, n_queries):
            result = self.overlay.route(
                query.source, query.target_key, faulty=faulty, record_path=True
            )
            if result.success and len(result.path) >= 1:
                paths.append(result.path)

        env = Environment()
        servers = {
            node: Resource(env, capacity=1)
            for node in self.overlay.ring.node_ids(live_only=True)
        }
        self.latencies.clear()
        self.queue_waits.clear()
        env.process(self._arrival_process(env, servers, paths, rng))
        env.run()
        return QueryLatencyStats.from_samples(self.latencies, self.queue_waits)
