"""Reproduction of "Oscar: A Data-Oriented Overlay For Heterogeneous
Environments" (Girdzijauskas, Datta, Aberer — ICDE 2007).

A pure-Python simulation library implementing the Oscar small-world
overlay, its substrates (ring, routing, sampling, workloads, degree
models, churn, discrete-event kernel) and the Mercury baseline, plus an
experiment harness that regenerates every figure of the paper.

Quickstart::

    from repro import OscarConfig, OscarOverlay
    from repro.degree import ConstantDegrees
    from repro.workloads import GnutellaLikeDistribution

    overlay = OscarOverlay(OscarConfig(), seed=42)
    overlay.grow(500, GnutellaLikeDistribution(), ConstantDegrees(27))
    overlay.rewire()
    print(overlay.route(overlay.random_live_node(), target_key=0.25))
"""

from ._version import __version__
from .chord import ChordOverlay
from .config import (
    ChurnConfig,
    GrowthConfig,
    MercuryConfig,
    OscarConfig,
    RoutingConfig,
    SamplingMode,
)
from .core import OscarNode, OscarOverlay, PartitionTable, Substrate
from .engine import BatchQueryEngine
from .errors import ReproError
from .index import DistributedIndex
from .mercury import MercuryOverlay
from .ring import Ring
from .routing import RangeQueryResult, RouteResult, RouteStats, route_range, summarize_routes

__all__ = [
    "BatchQueryEngine",
    "ChordOverlay",
    "ChurnConfig",
    "DistributedIndex",
    "GrowthConfig",
    "MercuryConfig",
    "MercuryOverlay",
    "OscarConfig",
    "OscarNode",
    "OscarOverlay",
    "PartitionTable",
    "RangeQueryResult",
    "ReproError",
    "Ring",
    "RouteResult",
    "RouteStats",
    "RoutingConfig",
    "SamplingMode",
    "Substrate",
    "route_range",
    "summarize_routes",
    "__version__",
]
