"""The project-specific rules: the contracts the test suite can only sample.

Every rule here encodes a discipline the differential/golden suites
*depend on* but cannot themselves enforce exhaustively — a property
test samples seeds; these rules pin the source-level invariant for
every line, every PR:

========  ==========================  =============================================
Code      Name                        Contract
========  ==========================  =============================================
RNG001    rng-discipline              all randomness flows through labelled
                                      ``repro.rng`` streams
KEY001    keyspace-exactness          keys stay exact uint64; no float arithmetic
                                      or raw ``<``/``==`` ordering on them
SOA001    soa-boundary                engine kernels never cross the per-peer
                                      Python-object boundary
ITER001   nondeterministic-iteration  no iteration over hash-ordered sets
CLK001    wallclock-env               no wall clock / environment reads in
                                      simulation code
DOC001    docstring-contracts         public engine defs document their RNG
                                      streams (replaces the ruff D-select gate)
CACHE001  cache-version-guard         version-keyed cache state (``*_cache``)
                                      is only read under a version equality
                                      guard
========  ==========================  =============================================

Scope notes live on each rule; per-line escapes are
``# repro: allow[CODE]`` (:mod:`repro.analysis.suppressions`) and
grandfathered findings live in the committed baseline
(:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from .core import Analyzer, Finding, ModuleContext, Rule, register_rule

__all__ = [
    "RngDisciplineRule",
    "KeyspaceExactnessRule",
    "SoaBoundaryRule",
    "NondeterministicIterationRule",
    "WallClockRule",
    "DocstringContractsRule",
    "CacheGuardRule",
]


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _in_repro(ctx: ModuleContext, *suffixes: str) -> bool:
    """Whether the module path ends with any ``repro/...`` suffix."""
    return any(ctx.posix.endswith(suffix) for suffix in suffixes)


# ----------------------------------------------------------------------
# RNG001 — rng discipline
# ----------------------------------------------------------------------


@register_rule
class RngDisciplineRule(Rule):
    """All randomness must originate from labelled ``repro.rng`` streams.

    The bit-identical differential suites (vectorized vs reference,
    parallel vs sequential runners) hold only because every generator
    descends from ``split(seed, *labels)`` / ``make_rng(seed)`` with a
    state-independent draw layout. One bare ``np.random.default_rng()``
    (OS-entropy seeded) or stdlib ``random`` call (process-salted) makes
    a run unreproducible in ways a golden fixture may not catch until
    the stream layout shifts much later.

    Fires on: ``import random`` / ``from random import ...``; any
    ``numpy.random`` attribute use except the :class:`~numpy.random.
    Generator` / ``BitGenerator`` *type* names (annotations are fine,
    factories are not); importing ``numpy.random`` or its members
    directly. Sanctioned call sites: ``repro/rng.py`` itself, which
    wraps ``default_rng``/``SeedSequence`` behind the labelled-stream
    API.
    """

    code = "RNG001"
    name = "rng-discipline"
    description = "randomness must flow through repro.rng labelled streams"

    #: numpy.random attributes that name *types* (annotation use), not
    #: entropy sources or factories.
    _TYPE_NAMES = frozenset({"Generator", "BitGenerator", "SeedSequence"})

    def applies(self, ctx: ModuleContext) -> bool:
        return not _in_repro(ctx, "repro/rng.py")

    def visit_Import(self, ctx: ModuleContext, node: ast.Import, analyzer: Analyzer):
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random":
                yield ctx.finding(
                    self.code,
                    node,
                    "stdlib 'random' is process-salted and unlabelled; derive a "
                    "stream with repro.rng.split(seed, *labels) instead",
                )
            elif alias.name.startswith("numpy.random"):
                yield ctx.finding(
                    self.code,
                    node,
                    "import numpy.random bypasses the labelled-stream discipline; "
                    "use repro.rng.split/make_rng",
                )

    def visit_ImportFrom(self, ctx: ModuleContext, node: ast.ImportFrom, analyzer: Analyzer):
        if node.module is None:
            return
        if node.module == "random" or node.module.startswith("random."):
            yield ctx.finding(
                self.code,
                node,
                "stdlib 'random' is process-salted and unlabelled; derive a "
                "stream with repro.rng.split(seed, *labels) instead",
            )
        elif node.module == "numpy.random" or node.module.startswith("numpy.random."):
            bad = [a.name for a in node.names if a.name not in self._TYPE_NAMES]
            if bad:
                yield ctx.finding(
                    self.code,
                    node,
                    f"importing {', '.join(bad)} from numpy.random bypasses the "
                    "labelled-stream discipline; use repro.rng.split/make_rng",
                )

    def visit_Attribute(self, ctx: ModuleContext, node: ast.Attribute, analyzer: Analyzer):
        # np.random.X / numpy.random.X for any non-type X.
        if (
            isinstance(node.value, ast.Attribute)
            and node.value.attr == "random"
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id in ("np", "numpy")
            and node.attr not in self._TYPE_NAMES
        ):
            yield ctx.finding(
                self.code,
                node,
                f"numpy.random.{node.attr} creates/uses an unlabelled entropy "
                "source; every Generator must come from repro.rng.split/make_rng",
            )

    def visit_Call(self, ctx: ModuleContext, node: ast.Call, analyzer: Analyzer):
        if isinstance(node.func, ast.Name) and node.func.id == "default_rng":
            yield ctx.finding(
                self.code,
                node,
                "bare default_rng() is OS-entropy seeded; every Generator must "
                "come from repro.rng.split/make_rng",
            )


# ----------------------------------------------------------------------
# KEY001 — keyspace exactness
# ----------------------------------------------------------------------


@register_rule
class KeyspaceExactnessRule(Rule):
    """Values from the uint64 keyspace never meet float arithmetic.

    PR 3 moved all geometry to exact fixed-point keys precisely because
    float rounding let the metric and the comparison predicate disagree
    at arc borders (two real bugs). The discipline that keeps the class
    dead is source-level: a value obtained from ``key_of`` /
    ``keys_array`` / ``from_unit(s)`` (or a snapshot's key columns) may
    only be combined with other keys via wrapping subtraction (which
    yields a *distance* — totally ordered, safe) or passed to
    :mod:`repro.ring.keyspace` kernels. This rule performs a
    per-function taint walk:

    * **sources**: calls to ``key_of``/``keys_array``/``from_unit``/
      ``from_units``; subscripted ``.keys``/``.all_keys``/``.key``
      columns; names assigned from tainted expressions (``int()``,
      ``np.asarray`` and subscripts/``.copy()`` propagate taint —
      casting a key does not untaint it).
    * **violations**: ``float(key)``; ``key <op> <float literal>`` or
      ``/``/``*``/``**``/``%`` arithmetic on a key; ordering or
      equality comparisons (``<``, ``==``, ...) where both sides are
      keys (rank keys with ``cw_distance``/``cw_rank_key`` instead —
      raw comparisons ignore the wrap).
    * **not violations**: ``a - b`` (the wrapping distance — the result
      leaves the taint set), keys passed as call arguments (the callee
      owns its contract), membership in keyspace kernels.

    ``ring/keyspace.py`` itself is exempt: it is the one module allowed
    to know how keys are represented.
    """

    code = "KEY001"
    name = "keyspace-exactness"
    description = "no float arithmetic or raw comparisons on uint64 keys"

    _SOURCE_CALLS = frozenset({"key_of", "keys_array", "from_unit", "from_units"})
    _SOURCE_ATTRS = frozenset({"all_keys", "keys", "key"})
    _PROPAGATING_CALLS = frozenset({"int", "asarray", "array", "copy", "astype"})
    _UNSAFE_OPS = (ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)

    def __init__(self) -> None:
        self._tainted: set[str] = set()

    def applies(self, ctx: ModuleContext) -> bool:
        return not _in_repro(ctx, "repro/ring/keyspace.py")

    # -- scope management ----------------------------------------------

    def visit_FunctionDef(self, ctx, node, analyzer):
        self._tainted = set()
        return ()

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- taint ----------------------------------------------------------

    def _is_key(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._tainted
        if isinstance(node, ast.Subscript):
            return self._is_key(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in self._SOURCE_CALLS:
                    return True
                # key.copy() / key.astype(...) / np.asarray(key)
                if func.attr in self._PROPAGATING_CALLS and self._is_key(func.value):
                    return True
                if (
                    func.attr in self._PROPAGATING_CALLS
                    and node.args
                    and self._is_key(node.args[0])
                ):
                    return True
            elif isinstance(func, ast.Name):
                if func.id in self._SOURCE_CALLS:
                    return True
                if func.id in self._PROPAGATING_CALLS and node.args:
                    return self._is_key(node.args[0])
            return False
        if isinstance(node, ast.Attribute):
            # Key columns are always *indexed* (``view.keys[rows]``,
            # ``state.key[slot]``) — requiring the Subscript context
            # keeps ``dict.keys()`` and unrelated ``.key`` reads out.
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            # key + distance stays a key; distance + distance is clean
            # but indistinguishable here, so stay conservative only when
            # a side is already tainted.
            return self._is_key(node.left) or self._is_key(node.right)
        if isinstance(node, ast.IfExp):
            return self._is_key(node.body) or self._is_key(node.orelse)
        return False

    def _is_key_subscript_base(self, node: ast.Subscript) -> bool:
        value = node.value
        return (
            isinstance(value, ast.Attribute) and value.attr in self._SOURCE_ATTRS
        )

    def visit_Subscript(self, ctx, node: ast.Subscript, analyzer):
        # Mark names for `x = view.keys[rows]`-style taint in visit_Assign;
        # nothing to report at the subscript itself.
        return ()

    def visit_Assign(self, ctx: ModuleContext, node: ast.Assign, analyzer: Analyzer):
        tainted = self._expression_tainted(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if tainted:
                    self._tainted.add(target.id)
                else:
                    self._tainted.discard(target.id)
        return ()

    def _expression_tainted(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Subscript) and self._is_key_subscript_base(node):
            return True
        return self._is_key(node)

    # -- violations ------------------------------------------------------

    def visit_Call(self, ctx: ModuleContext, node: ast.Call, analyzer: Analyzer):
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and node.args
            and self._expression_tainted(node.args[0])
        ):
            yield ctx.finding(
                self.code,
                node,
                "float() on a uint64 key loses exactness; convert at the API "
                "edge with keyspace.to_unit/to_units",
            )

    def visit_BinOp(self, ctx: ModuleContext, node: ast.BinOp, analyzer: Analyzer):
        left_key = self._expression_tainted(node.left)
        right_key = self._expression_tainted(node.right)
        if not (left_key or right_key):
            return
        if isinstance(node.op, self._UNSAFE_OPS):
            yield ctx.finding(
                self.code,
                node,
                "inexact arithmetic on a uint64 key; only wrapping +/- and the "
                "repro.ring.keyspace kernels preserve exactness",
            )
            return
        other = node.right if left_key else node.left
        if isinstance(other, ast.Constant) and isinstance(other.value, float):
            yield ctx.finding(
                self.code,
                node,
                "float literal combined with a uint64 key; keys never mix with "
                "unit-circle floats outside ring/keyspace.py",
            )

    def visit_Compare(self, ctx: ModuleContext, node: ast.Compare, analyzer: Analyzer):
        operands = [node.left, *node.comparators]
        keyish = [self._expression_tainted(op) for op in operands]
        if not any(keyish):
            return
        for left, right, op in zip(operands, operands[1:], node.ops):
            l_key = self._expression_tainted(left)
            r_key = self._expression_tainted(right)
            if l_key and r_key and isinstance(
                op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
            ):
                yield ctx.finding(
                    self.code,
                    node,
                    "raw comparison of two uint64 keys ignores the wrap; order "
                    "by cw_distance/cw_rank_key or test with in_cw_interval",
                )
            elif (l_key or r_key) and any(
                isinstance(other, ast.Constant) and isinstance(other.value, float)
                for other in (left, right)
            ):
                yield ctx.finding(
                    self.code,
                    node,
                    "comparing a uint64 key against a float literal; keys never "
                    "mix with unit-circle floats outside ring/keyspace.py",
                )


# ----------------------------------------------------------------------
# SOA001 — struct-of-arrays boundary
# ----------------------------------------------------------------------


@register_rule
class SoaBoundaryRule(Rule):
    """Engine hot paths stay on flat arrays, never per-peer objects.

    The million-peer budget (PR 6) holds because the batch kernels in
    ``engine/construct.py``, ``engine/batch.py`` and ``engine/churn.py``
    read and write :class:`~repro.core.soa.SubstrateState` columns
    directly; one innocent ``for node in view.nodes`` reintroduces a
    per-peer Python round-trip and silently re-caps practical scale at
    ~100k. This rule flags, inside those three modules:

    * reads of a ``.nodes`` attribute or of a local bound to one
      (subscripting, iterating or calling through ``nodes``);
    * :class:`~repro.core.node.StateNodeView` per-peer attribute access
      (``in_degree``, ``partitions``, ``reset_links``, ...) on any
      object;
    * per-peer protocol calls (``neighbors_of``) in loop position.

    **Whitelisted:** any function whose name contains ``reference`` —
    the sequential executable-specification twins are *defined* by
    crossing the boundary (that is what the differential tests compare
    against). Intentional scalar fallbacks for substrates without a
    shared state (Chord/Mercury dict paths) carry explicit per-line
    allows instead, so every boundary crossing is visible in the diff
    that introduces it.
    """

    code = "SOA001"
    name = "soa-boundary"
    description = "engine kernels must not cross the per-peer object boundary"

    _KERNELS = (
        "repro/engine/construct.py",
        "repro/engine/batch.py",
        "repro/engine/churn.py",
    )
    #: Attributes unique to per-peer view objects (never SubstrateState
    #: columns — ``out_links``/``samples_spent`` are deliberately absent
    #: because the state arrays share those names).
    _VIEW_ATTRS = frozenset(
        {
            "in_degree",
            "rho_max_in",
            "rho_max_out",
            "partitions",
            "spare_in_capacity",
            "can_accept",
            "wants_more_links",
            "accept_in_link",
            "drop_in_link",
            "reset_links",
            "neighbors_of",
        }
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return _in_repro(ctx, *self._KERNELS)

    def visit_Attribute(self, ctx: ModuleContext, node: ast.Attribute, analyzer: Analyzer):
        if analyzer.in_reference_scope():
            return
        if node.attr == "nodes":
            yield ctx.finding(
                self.code,
                node,
                "engine kernel reads a per-peer '.nodes' table; use the "
                "SubstrateState columns (or move this into a *_reference twin)",
            )
        elif node.attr in self._VIEW_ATTRS:
            yield ctx.finding(
                self.code,
                node,
                f"per-peer view attribute '.{node.attr}' inside an engine "
                "kernel; read/write the SubstrateState column instead",
            )
        elif isinstance(node.value, ast.Name) and node.value.id in ("nodes", "node"):
            yield ctx.finding(
                self.code,
                node,
                f"'.{node.attr}' through per-peer object '{node.value.id}' "
                "inside an engine kernel; stay on the flat arrays",
            )

    def visit_Subscript(self, ctx: ModuleContext, node: ast.Subscript, analyzer: Analyzer):
        if analyzer.in_reference_scope():
            return
        if isinstance(node.value, ast.Name) and node.value.id == "nodes":
            yield ctx.finding(
                self.code,
                node,
                "indexing a per-peer 'nodes' table inside an engine kernel; "
                "translate ids to slots and use the SubstrateState columns",
            )

    def visit_For(self, ctx: ModuleContext, node: ast.For, analyzer: Analyzer):
        if analyzer.in_reference_scope():
            return
        iter_src = _dotted(node.iter) or ""
        if iter_src == "nodes" or iter_src.endswith(".nodes"):
            yield ctx.finding(
                self.code,
                node,
                "per-peer loop over a nodes table inside an engine kernel; "
                "vectorize over SubstrateState columns",
            )


# ----------------------------------------------------------------------
# ITER001 — nondeterministic iteration
# ----------------------------------------------------------------------


@register_rule
class NondeterministicIterationRule(Rule):
    """Hash-ordered iteration never feeds an ordering-sensitive sink.

    Python ``set`` iteration order depends on insertion history *and*
    (for strings) the per-process hash salt. Feeding it into
    ``Ring.insert_many``, a lexsort tiebreak, an RNG stream label, or
    any array constructor quietly makes "same seed, same network"
    false on a different machine. Dict iteration is insertion-ordered
    and therefore fine — sets are the hazard.

    Fires when an expression inferred set-typed (``set(...)`` call, set
    literal/comprehension, set-annotated name, set-operator result) is
    iterated: ``for``/comprehension iteration, ``list``/``tuple``/
    ``iter``/``enumerate``/``np.fromiter``/``np.array``/``np.asarray``
    conversion, ``str.join``, or ``*`` unpacking. Order-insensitive
    consumers (``len``, membership, ``sorted``, ``min``/``max``/
    ``sum``/``any``/``all``, set algebra) are untouched — ``sorted(s)``
    is the idiomatic fix.
    """

    code = "ITER001"
    name = "nondeterministic-iteration"
    description = "no iteration over hash-ordered sets into ordering-sensitive sinks"

    _ORDER_SENSITIVE_CONVERTERS = frozenset(
        {"list", "tuple", "iter", "enumerate", "fromiter", "array", "asarray", "concatenate"}
    )

    def __init__(self) -> None:
        self._set_names: set[str] = set()

    def visit_FunctionDef(self, ctx, node, analyzer):
        self._set_names = set()
        return ()

    visit_AsyncFunctionDef = visit_FunctionDef

    def _is_set(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self._is_set(func.value)
            return False
        if isinstance(node, ast.Name):
            return node.id in self._set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set(node.left) and self._is_set(node.right)
        return False

    @staticmethod
    def _is_set_annotation(annotation: ast.AST) -> bool:
        base = annotation
        if isinstance(base, ast.Subscript):
            base = base.value
        return isinstance(base, ast.Name) and base.id in ("set", "frozenset")

    def visit_Assign(self, ctx, node: ast.Assign, analyzer):
        tainted = self._is_set(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if tainted:
                    self._set_names.add(target.id)
                else:
                    self._set_names.discard(target.id)
        return ()

    def visit_AnnAssign(self, ctx, node: ast.AnnAssign, analyzer):
        if isinstance(node.target, ast.Name) and self._is_set_annotation(node.annotation):
            self._set_names.add(node.target.id)
        return ()

    def _flag(self, ctx: ModuleContext, node: ast.AST, how: str) -> Iterator[Finding]:
        yield ctx.finding(
            self.code,
            node,
            f"{how} a hash-ordered set is nondeterministic across processes; "
            "wrap it in sorted(...) before it reaches an ordering-sensitive sink",
        )

    def visit_For(self, ctx: ModuleContext, node: ast.For, analyzer: Analyzer):
        if self._is_set(node.iter):
            yield from self._flag(ctx, node, "iterating")

    def _comp_findings(self, ctx, node, analyzer=None) -> Iterator[Finding]:
        for gen in node.generators:
            if self._is_set(gen.iter):
                yield from self._flag(ctx, node, "iterating")

    visit_ListComp = _comp_findings
    visit_GeneratorExp = _comp_findings
    visit_DictComp = _comp_findings
    visit_SetComp = _comp_findings

    def visit_Starred(self, ctx: ModuleContext, node: ast.Starred, analyzer: Analyzer):
        if self._is_set(node.value):
            yield from self._flag(ctx, node, "unpacking")

    def visit_Call(self, ctx: ModuleContext, node: ast.Call, analyzer: Analyzer):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
            if name == "join" and node.args and self._is_set(node.args[0]):
                yield from self._flag(ctx, node, "joining")
                return
        if (
            name in self._ORDER_SENSITIVE_CONVERTERS
            and node.args
            and self._is_set(node.args[0])
        ):
            yield from self._flag(ctx, node, "materializing")


# ----------------------------------------------------------------------
# CLK001 — wall clock / environment leakage
# ----------------------------------------------------------------------


@register_rule
class WallClockRule(Rule):
    """Simulation code never reads the wall clock or the environment.

    A result that depends on ``time.time()`` or ``os.environ`` is not a
    function of ``(code, seed, params)`` — the artifact cache would
    happily serve stale results and the differential suites would chase
    phantom divergences. Timing belongs to the *measurement* layer:
    ``cli.py`` (bench output) and ``experiments/runner.py`` (the
    Runner's wall-time shim) are the two sanctioned scopes and are
    excluded wholesale, as is the whole ``repro.net`` transport package
    — an asyncio runtime legitimately owns timeouts, socket deadlines
    and loop clocks; its determinism is enforced *behaviorally* by the
    lockstep oracle-equivalence suite (``tests/test_net.py``), not by
    banning the clock. The sans-I/O machines the runtime drives live in
    ``repro.protocol`` and remain fully in scope. Experiment specs that
    legitimately *report* wall-time series (``scale-build``,
    ``steady-churn``, ``net-smoke``) carry explicit per-line allows so
    each site stays visible.

    Fires on ``time.time/..._ns/monotonic/perf_counter/process_time``,
    ``from time import <those>``, ``datetime.now/utcnow/today``,
    ``os.environ`` and ``os.getenv`` — inside any ``repro`` module
    outside the sanctioned scopes.
    """

    code = "CLK001"
    name = "wallclock-env"
    description = "no wall-clock or environment reads in simulation code"

    _TIME_ATTRS = frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "process_time",
            "process_time_ns",
        }
    )
    _DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
    _ALLOWED_MODULES = ("repro/cli.py", "repro/experiments/runner.py")
    # Whole packages on the I/O side of the sans-I/O boundary: the
    # asyncio transport layer may use timeouts and loop clocks.
    _ALLOWED_PACKAGES = ("repro/net/",)

    def applies(self, ctx: ModuleContext) -> bool:
        if any(prefix in ctx.posix for prefix in self._ALLOWED_PACKAGES):
            return False
        return not _in_repro(ctx, *self._ALLOWED_MODULES)

    def visit_Attribute(self, ctx: ModuleContext, node: ast.Attribute, analyzer: Analyzer):
        dotted = _dotted(node)
        if dotted is None:
            return
        if dotted.startswith("time.") and node.attr in self._TIME_ATTRS:
            yield ctx.finding(
                self.code,
                node,
                f"{dotted} reads the wall clock inside simulation code; timing "
                "belongs to the Runner shim (experiments/runner.py) or the CLI",
            )
        elif node.attr in self._DATETIME_ATTRS and "datetime" in dotted.split("."):
            yield ctx.finding(
                self.code,
                node,
                f"{dotted} reads the wall clock; results must be a function of "
                "(code, seed, params)",
            )
        elif dotted in ("os.environ", "os.getenv"):
            yield ctx.finding(
                self.code,
                node,
                f"{dotted} makes behaviour depend on the process environment; "
                "thread configuration through explicit parameters",
            )

    def visit_ImportFrom(self, ctx: ModuleContext, node: ast.ImportFrom, analyzer: Analyzer):
        if node.module == "time":
            bad = [a.name for a in node.names if a.name in self._TIME_ATTRS]
            if bad:
                yield ctx.finding(
                    self.code,
                    node,
                    f"importing {', '.join(bad)} from time into simulation code; "
                    "timing belongs to the Runner shim or the CLI",
                )
        elif node.module == "os":
            bad = [a.name for a in node.names if a.name in ("environ", "getenv")]
            if bad:
                yield ctx.finding(
                    self.code,
                    node,
                    f"importing {', '.join(bad)} from os into simulation code; "
                    "thread configuration through explicit parameters",
                )


# ----------------------------------------------------------------------
# DOC001 — docstring contracts
# ----------------------------------------------------------------------


@register_rule
class DocstringContractsRule(Rule):
    """Public engine surface documents itself — and its RNG streams.

    Replaces the bolted-on ``ruff check --select D100-D104`` CI step
    with a contract-aware version: beyond mere docstring *presence* on
    modules, public classes and public functions in ``repro/engine``,
    any public function taking an ``rng`` or ``seed`` parameter must
    say which labelled stream(s) it consumes — its docstring (or, for
    ``__init__``, the class docstring) must mention ``RNG`` or
    ``stream``. The determinism contract is only auditable if every
    entry point states where its randomness comes from.
    """

    code = "DOC001"
    name = "docstring-contracts"
    description = "public engine defs are documented, RNG usage included"

    _RNG_WORDS = re.compile(r"rng|stream", re.IGNORECASE)

    def applies(self, ctx: ModuleContext) -> bool:
        return "repro/engine/" in ctx.posix

    def begin_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ast.get_docstring(ctx.tree) is None:
            yield ctx.finding(
                self.code, 1, "engine module is missing its module docstring"
            )

    def visit_ClassDef(self, ctx: ModuleContext, node: ast.ClassDef, analyzer: Analyzer):
        if node.name.startswith("_"):
            return
        if ast.get_docstring(node) is None:
            yield ctx.finding(
                self.code, node, f"public engine class {node.name!r} has no docstring"
            )

    def visit_FunctionDef(self, ctx: ModuleContext, node: ast.FunctionDef, analyzer: Analyzer):
        name = node.name
        is_dunder = name.startswith("__") and name.endswith("__")
        if name.startswith("_") and not is_dunder:
            return
        doc = ast.get_docstring(node)
        if doc is None and not is_dunder:
            yield ctx.finding(
                self.code,
                node,
                f"public engine function {name!r} has no docstring",
            )
            return
        params = {arg.arg for arg in node.args.args + node.args.kwonlyargs}
        if not params & {"rng", "seed"}:
            return
        text = doc or ""
        if name == "__init__" and not self._RNG_WORDS.search(text):
            # Constructors may document their args on the class.
            class_doc = self._enclosing_class_doc(ctx, analyzer)
            text = f"{text}\n{class_doc}"
        if not self._RNG_WORDS.search(text):
            yield ctx.finding(
                self.code,
                node,
                f"{name!r} takes {sorted(params & {'rng', 'seed'})} but its "
                "docstring never mentions the RNG stream(s) it consumes",
            )

    visit_AsyncFunctionDef = visit_FunctionDef

    def _enclosing_class_doc(self, ctx: ModuleContext, analyzer: Analyzer) -> str:
        """Docstring of the innermost enclosing class, found by name.

        The analyzer's scope stack carries names, not nodes; a single
        targeted search recovers the class node. Good enough: engine
        modules do not nest same-named classes.
        """
        class_names = set(analyzer.scope[:-1])
        if not class_names:
            return ""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name in class_names:
                return ast.get_docstring(node) or ""
        return ""


# ----------------------------------------------------------------------
# CACHE001 — version-guarded cache reads
# ----------------------------------------------------------------------


@register_rule
class CacheGuardRule(Rule):
    """Version-keyed cache state is only read under a version guard.

    The serving layer (PR 10) answers queries from caches —
    ``BatchQueryEngine._route_cache`` (the topology snapshot),
    ``ServeEngine._serve_cache`` (the believed-live snapshot) and the
    ``result_cache`` LRU — that are correct *only at the version they
    were built*. A read that skips the version check serves a
    pre-churn owner as if it were current: exactly the stale-routing
    bug PR 5 fixed once at a single call site. The discipline is
    structural, so it is lintable: version-keyed cache state lives in
    attributes named ``*_cache`` (the naming *is* the contract), and a
    function that reads one must carry a version-equality check.

    Fires on any ``Load`` of a ``*_cache`` attribute inside a
    ``repro/engine`` function that contains no ``==``/``!=`` comparison
    involving a ``version``-named operand. A method call on the cache
    that *passes* a ``version``-named argument (``result_cache.get(key,
    version)``) delegates the check to the cache and is exempt.
    Writes/rebuilds (``self._route_cache = ...``) are not reads.
    Intentional unguarded reads — test-only exposure properties, bulk
    ``clear()`` — carry per-line ``# repro: allow[CACHE001]`` escapes
    so each one is visible in the diff that introduces it.
    """

    code = "CACHE001"
    name = "cache-version-guard"
    description = "version-keyed cache reads require a version equality guard"

    def applies(self, ctx: ModuleContext) -> bool:
        return "repro/engine/" in ctx.posix

    @staticmethod
    def _own_nodes(node: ast.AST) -> Iterator[ast.AST]:
        """The function's own subtree, nested defs excluded (they get
        their own ``visit_FunctionDef`` pass)."""
        stack = list(ast.iter_child_nodes(node))
        while stack:
            child = stack.pop()
            yield child
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.extend(ast.iter_child_nodes(child))

    @staticmethod
    def _mentions_version(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and "version" in sub.id.lower():
                return True
            if isinstance(sub, ast.Attribute) and "version" in sub.attr.lower():
                return True
        return False

    def visit_FunctionDef(self, ctx: ModuleContext, node: ast.FunctionDef, analyzer: Analyzer):
        own = list(self._own_nodes(node))
        guarded = any(
            isinstance(sub, ast.Compare)
            and any(isinstance(op, (ast.Eq, ast.NotEq)) for op in sub.ops)
            and any(
                self._mentions_version(operand)
                for operand in (sub.left, *sub.comparators)
            )
            for sub in own
        )
        if guarded:
            return
        # Calls on the cache that hand the version to the cache itself
        # (`result_cache.get(key, version)`) delegate the guard.
        delegated: set[ast.AST] = set()
        for sub in own:
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and isinstance(sub.func.value, ast.Attribute)
                and sub.func.value.attr.endswith("_cache")
                and any(self._mentions_version(arg) for arg in sub.args)
            ):
                delegated.add(sub.func.value)
        for sub in own:
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.ctx, ast.Load)
                and sub.attr.endswith("_cache")
                and sub not in delegated
            ):
                yield ctx.finding(
                    self.code,
                    sub,
                    f"read of version-keyed cache '.{sub.attr}' without a "
                    "version equality guard; compare against the current "
                    "version (or pass it to the cache's get/put) before "
                    "serving from cache state",
                )

    visit_AsyncFunctionDef = visit_FunctionDef
