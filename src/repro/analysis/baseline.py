"""The committed findings baseline: grandfathered violations, justified.

The baseline is how a new rule lands without a flag day: violations
that predate the rule (and are judged acceptable) are recorded in a
committed JSON file with a **mandatory one-line justification**, and
the analyzer treats them as known. Everything else about it is strict:

* An entry matches a finding by ``(code, path, fingerprint)`` — the
  fingerprint is the stripped source line, so entries survive pure
  line-number drift but die the moment the offending line is edited.
* Matching is multiset-style: two identical offending lines in one file
  need two entries.
* A **stale entry** (nothing matched it — the violation was fixed or
  the line changed) is itself a finding (:data:`BASELINE_CODE`): the
  baseline may only shrink through edits that prove the fix, never rot.
* ``SUP001`` (unused suppression) findings can never be baselined.

Format (``lint-baseline.json`` at the repo root)::

    {
      "schema": "repro-lint-baseline/1",
      "entries": [
        {"code": "CLK001",
         "path": "src/repro/experiments/store.py",
         "fingerprint": "created = time.time()",
         "justification": "artifact provenance timestamp, not simulation state"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..errors import ConfigError
from .core import Finding
from .suppressions import SUPPRESSION_CODE

__all__ = ["BASELINE_CODE", "BaselineEntry", "Baseline"]

#: Framework code for stale baseline entries. Not suppressible.
BASELINE_CODE = "BASE001"

_SCHEMA = "repro-lint-baseline/1"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered violation."""

    code: str
    path: str
    fingerprint: str
    justification: str

    def key(self) -> tuple[str, str, str]:
        """The matching identity (justifications don't participate)."""
        return (self.code, self.path, self.fingerprint)

    def as_dict(self) -> dict[str, str]:
        return {
            "code": self.code,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "justification": self.justification,
        }


class Baseline:
    """A loaded baseline with multiset matching and staleness tracking."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries = list(entries)
        self._unmatched: dict[tuple[str, str, str], list[BaselineEntry]] = {}
        for entry in self.entries:
            self._unmatched.setdefault(entry.key(), []).append(entry)

    # ------------------------------------------------------------------
    # file round-trip
    # ------------------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Parse and validate a baseline file.

        Raises:
            ConfigError: missing file, unparsable JSON, wrong schema
                tag, or any entry lacking one of its four fields (an
                empty ``justification`` counts as lacking — the whole
                point of the baseline is the recorded why).
        """
        if not path.is_file():
            raise ConfigError(f"baseline file not found: {path}")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ConfigError(f"baseline {path} is not valid JSON: {error}") from None
        if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA:
            raise ConfigError(
                f"baseline {path} must carry schema {_SCHEMA!r}, "
                f"got {payload.get('schema') if isinstance(payload, dict) else payload!r}"
            )
        entries = []
        for index, raw in enumerate(payload.get("entries", [])):
            if not isinstance(raw, dict):
                raise ConfigError(f"baseline {path} entry {index} is not an object")
            missing = [
                k
                for k in ("code", "path", "fingerprint", "justification")
                if not str(raw.get(k, "")).strip()
            ]
            if missing:
                raise ConfigError(
                    f"baseline {path} entry {index} is missing {', '.join(missing)}"
                )
            if str(raw["justification"]).strip().lower().startswith("todo"):
                raise ConfigError(
                    f"baseline {path} entry {index} still carries the "
                    "'TODO: justify' placeholder — write the real justification"
                )
            if raw["code"] == SUPPRESSION_CODE:
                raise ConfigError(
                    f"baseline {path} entry {index}: {SUPPRESSION_CODE} findings "
                    "cannot be baselined (fix the stale suppression instead)"
                )
            entries.append(
                BaselineEntry(
                    code=str(raw["code"]),
                    path=str(raw["path"]),
                    fingerprint=str(raw["fingerprint"]),
                    justification=str(raw["justification"]),
                )
            )
        return cls(entries)

    def write(self, path: Path) -> None:
        """Serialize deterministically (sorted entries, stable keys)."""
        ordered = sorted(self.entries, key=lambda e: e.key())
        payload = {
            "schema": _SCHEMA,
            "entries": [entry.as_dict() for entry in ordered],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], previous: "Baseline | None" = None
    ) -> "Baseline":
        """A baseline covering ``findings``, for ``--write-baseline``.

        Justifications of still-matching entries in ``previous`` are
        preserved; genuinely new entries get an explicit
        ``"TODO: justify"`` marker that :meth:`load` will reject until
        a human replaces it — regeneration can never silently launder a
        new violation into an accepted one.
        """
        keep: dict[tuple[str, str, str], list[str]] = {}
        if previous is not None:
            for entry in previous.entries:
                keep.setdefault(entry.key(), []).append(entry.justification)
        entries = []
        for finding in findings:
            if finding.code in (SUPPRESSION_CODE, BASELINE_CODE):
                continue
            key = (finding.code, finding.path, finding.fingerprint)
            stack = keep.get(key)
            justification = stack.pop(0) if stack else "TODO: justify"
            entries.append(
                BaselineEntry(
                    code=finding.code,
                    path=finding.path,
                    fingerprint=finding.fingerprint,
                    justification=justification,
                )
            )
        return cls(entries)

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------

    def match(self, finding: Finding) -> bool:
        """Whether ``finding`` is grandfathered (consumes one entry)."""
        if finding.code in (SUPPRESSION_CODE, BASELINE_CODE):
            return False
        stack = self._unmatched.get((finding.code, finding.path, finding.fingerprint))
        if stack:
            stack.pop()
            return True
        return False

    def stale(self) -> list[Finding]:
        """A :data:`BASELINE_CODE` finding per unconsumed entry."""
        findings = []
        for stack in self._unmatched.values():
            for entry in stack:
                findings.append(
                    Finding(
                        path=entry.path,
                        line=0,
                        col=0,
                        code=BASELINE_CODE,
                        message=(
                            f"stale baseline entry: no {entry.code} finding matches "
                            f"{entry.fingerprint!r} — remove the entry"
                        ),
                        fingerprint=entry.fingerprint,
                    )
                )
        findings.sort()
        return findings
