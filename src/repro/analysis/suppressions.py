"""Per-line ``# repro: allow[CODE]`` suppressions, strict about waste.

A suppression silences exactly one rule on exactly one line::

    elapsed = time.time()  # repro: allow[CLK001]
    for links in targets:  # repro: allow[SOA001,ITER001]

Design rules:

* **Codes are explicit.** There is no bare ``# repro: allow`` — a
  suppression that does not name its rule hides future, unrelated
  violations on the same line.
* **Unused suppressions error.** When the named rule no longer fires on
  that line (the violation was fixed, the code moved, the code was
  mistyped), the analyzer emits :data:`SUPPRESSION_CODE` instead of
  silently carrying the stale comment forward. ``SUP001`` findings are
  themselves unsuppressible and unbaselineable — they always fail the
  run.
* **Malformed directives error too.** ``# repro: allow`` spelled with a
  typo (``alow``, missing brackets, empty brackets) is reported rather
  than ignored; a directive the author believes is active must never be
  a no-op.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Iterator

__all__ = ["SUPPRESSION_CODE", "SuppressionSheet"]

#: The framework code unused/malformed suppressions are reported under.
#: Not suppressible, not baselineable.
SUPPRESSION_CODE = "SUP001"

#: A well-formed directive comment: ``allow[CODE]`` or ``allow[A,B]``
#: behind the directive prefix.
_DIRECTIVE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")

#: Anything that *looks* like an attempted directive (for malformed
#: detection): a ``repro:`` comment mentioning allow.
_ATTEMPT = re.compile(r"#\s*repro:\s*(\S*)")


class SuppressionSheet:
    """The parsed suppressions of one module, with usage tracking."""

    def __init__(self) -> None:
        self._allows: dict[tuple[int, str], bool] = {}  # (line, code) -> used
        self.malformed: list[tuple[int, str]] = []

    @classmethod
    def parse(cls, source: str) -> "SuppressionSheet":
        """Scan the module's *comment tokens* for directives.

        Tokenizing (rather than a raw line scan) keeps docstrings and
        string literals that merely *mention* the directive syntax —
        documentation, the analyzer's own tests — from registering as
        live suppressions. A module that fails to tokenize yields an
        empty sheet; it also fails ``ast.parse``, so the analyzer
        reports it as a ``PARSE`` finding regardless.
        """
        sheet = cls()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return sheet
        for token in tokens:
            if token.type != tokenize.COMMENT or "repro:" not in token.string:
                continue
            line_no = token.start[0]
            match = _DIRECTIVE.search(token.string)
            if match:
                codes = [c.strip() for c in match.group(1).split(",")]
                if any(not c for c in codes):
                    sheet.malformed.append((line_no, "empty code in allow[...]"))
                    continue
                for code in codes:
                    sheet._allows[(line_no, code)] = False
                continue
            attempt = _ATTEMPT.search(token.string)
            if attempt is not None:
                sheet.malformed.append(
                    (line_no, f"malformed directive {attempt.group(0).strip()!r}")
                )
        return sheet

    def consume(self, line: int, code: str) -> bool:
        """Whether a finding of ``code`` at ``line`` is suppressed.

        Marks the suppression used. :data:`SUPPRESSION_CODE` findings
        are never consumable.
        """
        if code == SUPPRESSION_CODE:
            return False
        key = (line, code)
        if key in self._allows:
            self._allows[key] = True
            return True
        return False

    def problems(self) -> Iterator[tuple[int, str]]:
        """``(line, message)`` for every suppression that silenced
        nothing and every malformed directive."""
        for (line, code), used in sorted(self._allows.items()):
            if not used:
                yield line, f"unused suppression: no {code} finding on this line"
        for line, what in sorted(self.malformed):
            yield line, what
