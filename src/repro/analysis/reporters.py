"""Reporters: how a lint run is rendered for humans and for CI.

Two formats, both deterministic for identical inputs:

* **text** — one ``path:line:col CODE message`` line per finding (the
  grep/editor-jump format), followed by a one-line summary including
  how many findings were silenced by suppressions and by the baseline,
  so a "clean" run still shows how much grandfathered debt it is
  standing on.
* **json** — the ``repro-lint/1`` schema consumed by the CI
  ``static-analysis`` job (uploaded as an artifact). Stable keys,
  sorted findings, counts per rule code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .core import Finding

__all__ = ["RunResult", "render_text", "render_json", "JSON_SCHEMA"]

#: Schema tag stamped into every JSON report.
JSON_SCHEMA = "repro-lint/1"


@dataclass
class RunResult:
    """The outcome of one lint run, pre-rendering.

    Attributes:
        findings: Surviving findings (post-suppression, post-baseline),
            sorted.
        files_checked: How many modules were analyzed.
        suppressed: Findings silenced by ``# repro: allow[...]``.
        baselined: Findings matched by committed baseline entries.
    """

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        """Finding count per rule code, sorted by code."""
        tally: dict[str, int] = {}
        for finding in self.findings:
            tally[finding.code] = tally.get(finding.code, 0) + 1
        return dict(sorted(tally.items()))


def render_text(result: RunResult) -> str:
    """The human format: one line per finding plus a summary line."""
    lines = [
        f"{finding.location()} {finding.code} {finding.message}"
        for finding in result.findings
    ]
    noun = "file" if result.files_checked == 1 else "files"
    if result.clean:
        summary = (
            f"ok: {result.files_checked} {noun} checked, 0 findings "
            f"({result.suppressed} suppressed, {result.baselined} baselined)"
        )
    else:
        per_code = ", ".join(f"{code}×{n}" for code, n in result.counts().items())
        summary = (
            f"FAIL: {len(result.findings)} finding(s) [{per_code}] in "
            f"{result.files_checked} {noun} "
            f"({result.suppressed} suppressed, {result.baselined} baselined)"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: RunResult) -> str:
    """The machine format (``repro-lint/1``), for the CI artifact."""
    payload = {
        "schema": JSON_SCHEMA,
        "clean": result.clean,
        "files_checked": result.files_checked,
        "counts": result.counts(),
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "findings": [finding.as_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def render(result: RunResult, fmt: str) -> str:
    """Dispatch on ``fmt`` (validated at the CLI boundary)."""
    if fmt == "json":
        return render_json(result)
    return render_text(result)
