"""Lint-run orchestration and the ``repro lint`` argument surface.

:func:`run_lint` is the library entry (used by the tier-1 gate test);
:func:`main` is the argv-level entry shared by ``repro lint`` and
``scripts/repro_lint.py``. Boundary errors (unknown rule code, bad
path, broken baseline file) raise :class:`~repro.errors.ConfigError`,
which :func:`main` turns into a ``lint: <message>`` line on stderr and
exit status 2 — the same convention as ``repro run``/``repro bench``.

Exit statuses: 0 clean, 1 findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from ..errors import ConfigError
from .baseline import Baseline
from .core import Analyzer, iter_python_files, resolve_codes
from .reporters import RunResult, render

__all__ = ["run_lint", "build_parser", "main"]


def run_lint(
    paths: Sequence[str | Path],
    *,
    select: Sequence[str] | None = None,
    baseline: Baseline | None = None,
    root: Path | None = None,
) -> RunResult:
    """Analyze ``paths`` and fold in suppressions and the baseline.

    Args:
        paths: Files and/or directories to lint.
        select: Rule codes to run (``None`` = all registered rules).
        baseline: Loaded baseline; matched findings are dropped (and
            counted), stale entries come back as ``BASE001`` findings.
        root: Paths in findings are reported relative to this directory
            when possible (keeps committed baseline fingerprint paths
            stable regardless of where the linter is invoked from).

    Raises:
        ConfigError: Unknown rule code or nonexistent input path.
    """
    analyzer = Analyzer(resolve_codes(list(select) if select is not None else None))
    result = RunResult()
    kept = []
    for path in iter_python_files(paths):
        report_as = path.as_posix()
        if root is not None:
            try:
                report_as = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                pass
        findings = analyzer.analyze_file(path, report_as=report_as)
        result.files_checked += 1
        result.suppressed += analyzer.last_suppressed
        for finding in findings:
            if baseline is not None and baseline.match(finding):
                result.baselined += 1
            else:
                kept.append(finding)
    if baseline is not None:
        kept.extend(baseline.stale())
    kept.sort()
    result.findings = kept
    return result


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    """The ``repro lint`` argument parser (shared with the CI script)."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Static analysis for the repo's determinism and SoA contracts. "
            "Exit 0 when clean, 1 on findings, 2 on usage errors."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json follows the repro-lint/1 schema)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="committed baseline of grandfathered findings to honor",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline (report grandfathered findings too)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help=(
            "write a baseline covering the current findings to FILE and exit; "
            "new entries carry a 'TODO: justify' placeholder that must be "
            "edited before the file will load"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rule codes and exit",
    )
    return parser


def _default_baseline(paths: Sequence[str]) -> Path | None:
    """``lint-baseline.json`` next to the repo root, when present.

    The heuristic: walk up from the first input path looking for the
    file. Keeps ``repro lint src/`` from the repo root and
    ``scripts/repro_lint.py`` in CI agreeing on the same baseline
    without either passing ``--baseline`` explicitly.
    """
    start = Path(paths[0]).resolve() if paths else Path.cwd()
    for candidate_dir in [start, *start.parents]:
        candidate = candidate_dir / "lint-baseline.json"
        if candidate.is_file():
            return candidate
    return None


def main(argv: Sequence[str] | None = None, prog: str = "repro lint") -> int:
    """Argv-level entry point. Returns the process exit status."""
    parser = build_parser(prog=prog)
    args = parser.parse_args(list(argv) if argv is not None else None)

    try:
        if args.list_rules:
            from .core import all_rules

            for rule_cls in all_rules():
                print(f"{rule_cls.code}  {rule_cls.name}: {rule_cls.description}")
            return 0

        select = None
        if args.select is not None:
            select = [c.strip() for c in args.select.split(",") if c.strip()]
            if not select:
                raise ConfigError("--select given but no rule codes parsed from it")

        baseline = None
        baseline_path: Path | None = None
        if not args.no_baseline and args.write_baseline is None:
            if args.baseline is not None:
                baseline_path = Path(args.baseline)
            else:
                baseline_path = _default_baseline(args.paths)
            if baseline_path is not None:
                baseline = Baseline.load(baseline_path)
        elif args.baseline is not None and args.no_baseline:
            raise ConfigError("--baseline and --no-baseline are mutually exclusive")

        root = _repo_root_for(args.paths)
        result = run_lint(args.paths, select=select, baseline=baseline, root=root)

        if args.write_baseline is not None:
            previous = None
            prev_path = Path(args.write_baseline)
            if prev_path.is_file():
                previous = Baseline.load(prev_path)
            Baseline.from_findings(result.findings, previous).write(prev_path)
            print(
                f"wrote {len(result.findings)} entr"
                f"{'y' if len(result.findings) == 1 else 'ies'} to {prev_path}"
            )
            return 0
    except ConfigError as error:
        print(f"lint: {error.args[0]}", file=sys.stderr)
        return 2

    print(render(result, args.format), end="" if args.format == "json" else "\n")
    return 0 if result.clean else 1


def _repo_root_for(paths: Sequence[str]) -> Path | None:
    """The directory findings/baseline paths are made relative to.

    Anchored to the directory containing ``lint-baseline.json`` or the
    git root when either is findable; otherwise the cwd.
    """
    start = Path(paths[0]).resolve() if paths else Path.cwd().resolve()
    for candidate in [start, *start.parents]:
        if (candidate / "lint-baseline.json").is_file() or (candidate / ".git").exists():
            return candidate
    return Path.cwd()
