"""The analyzer engine: one AST walk per module, rules as visitors.

The framework is deliberately small. A :class:`Rule` declares a stable
``code`` (``RNG001``-style — reporters, suppressions and the baseline
all key on it) and implements ``visit_<NodeType>`` hooks; the
:class:`Analyzer` parses each module once, walks its AST once, and
dispatches every node to every applicable rule, tracking the enclosing
class/function scope so rules can whitelist known-scalar reference
paths without re-walking anything.

Findings are plain value objects carrying a *fingerprint* — the
stripped source line they anchor to — so the committed baseline
(:mod:`repro.analysis.baseline`) survives unrelated line-number drift:
moving a grandfathered violation does not invalidate its entry,
editing the offending line does.

The rule registry is module-global and populated by
:mod:`repro.analysis.rules` at import time; :func:`all_rules` /
:func:`get_rule` are the lookup surface the CLI validates user-supplied
codes against (unknown codes are a :class:`~repro.errors.ConfigError`
at the CLI boundary, exit 2 — the PR 4/5 convention).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from ..errors import ConfigError
from .suppressions import SUPPRESSION_CODE, SuppressionSheet

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "Analyzer",
    "register_rule",
    "all_rules",
    "get_rule",
    "resolve_codes",
    "iter_python_files",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: Posix-style path of the module, as given to the analyzer
            (repo-relative when linting from the repo root — the form
            the committed baseline stores).
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        code: The stable rule code (``RNG001`` ...).
        message: Human-readable description of the violation.
        fingerprint: The stripped source text of ``line`` — the
            line-number-independent identity the baseline matches on.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    fingerprint: str = field(compare=False, default="")

    def location(self) -> str:
        """``path:line:col`` — the reporter prefix."""
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view (the ``repro-lint/1`` finding schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


class ModuleContext:
    """Everything a rule may read about the module under analysis.

    Attributes:
        path: The module's path exactly as reported in findings.
        posix: ``path`` with forward slashes — what rules match their
            scope patterns against (e.g. ``"repro/engine/churn.py" in
            ctx.posix``).
        lines: Raw source lines (1-based access via :meth:`line_text`).
        tree: The parsed ``ast.Module``.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.posix = path.replace("\\", "/")
        self.lines = source.splitlines()
        self.tree = tree

    def line_text(self, line: int) -> str:
        """The stripped text of 1-based ``line`` ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, code: str, node: ast.AST | int, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` (or a line no)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = int(getattr(node, "lineno", 1))
            col = int(getattr(node, "col_offset", 0))
        return Finding(
            path=self.path,
            line=line,
            col=col,
            code=code,
            message=message,
            fingerprint=self.line_text(line),
        )


class Rule:
    """Base class for one analysis rule.

    Subclasses set the class attributes and implement any number of
    ``visit_<NodeType>(ctx, node, analyzer)`` hooks; each returns an
    iterable of :class:`Finding` (or ``None``). ``begin_module`` /
    ``finish_module`` bracket the walk for rules that accumulate state
    (taint sets, seen-docstring bookkeeping). Rules are instantiated
    fresh per analyzed module, so instance state never leaks between
    files.

    Attributes:
        code: Stable identifier — never renumber; retired codes stay
            reserved (suppressions and baselines reference them).
        name: Short kebab-case slug used by reporters.
        description: One-line summary shown by ``repro lint --list-rules``.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def applies(self, ctx: ModuleContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (path scoping)."""
        return True

    def begin_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        """Hook before the walk (module-level checks)."""
        return ()

    def finish_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        """Hook after the walk (checks needing whole-module state)."""
        return ()


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``rule_cls`` to the global registry.

    Codes are unique forever: re-registering an existing code raises
    (a second rule silently shadowing RNG001 would corrupt every
    suppression and baseline referencing it).
    """
    code = rule_cls.code
    if not code or not code[0].isalpha():
        raise ConfigError(f"rule {rule_cls.__name__} has no valid code")
    if code in _REGISTRY and _REGISTRY[code] is not rule_cls:
        raise ConfigError(f"duplicate rule code {code!r}")
    _REGISTRY[code] = rule_cls
    return rule_cls


def all_rules() -> list[type[Rule]]:
    """Every registered rule class, sorted by code."""
    from . import rules as _rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> type[Rule]:
    """Look up one rule class by its stable code.

    Raises:
        ConfigError: The code is not registered (the CLI surfaces this
            as a usage error, exit 2).
    """
    all_rules()  # ensure registration ran
    try:
        return _REGISTRY[code]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(f"unknown rule code {code!r} (known: {known})") from None


def resolve_codes(codes: Sequence[str] | None) -> list[type[Rule]]:
    """Rule classes for a ``--select`` list (``None`` = every rule)."""
    if codes is None:
        return all_rules()
    return [get_rule(code) for code in codes]


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic ``*.py`` sequence.

    Directories recurse (sorted), explicit files pass through; a path
    that exists but is neither is a :class:`~repro.errors.ConfigError`,
    as is a path that does not exist — bad input fails at the boundary,
    not as an empty (vacuously clean) run.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.is_file():
            if path.suffix != ".py":
                raise ConfigError(f"not a Python file: {path}")
            yield path
        else:
            raise ConfigError(f"no such file or directory: {path}")


class Analyzer:
    """Runs a set of rules over modules, one shared AST walk per module.

    Args:
        rule_classes: The rules to run (default: the full registry).

    The analyzer owns the scope stack: :attr:`scope` holds the names of
    the enclosing ``ClassDef``/``FunctionDef`` nodes (outermost first)
    while their bodies are visited, so rules can ask "am I inside a
    ``*_reference`` twin?" without tracking parents themselves.
    """

    def __init__(self, rule_classes: Sequence[type[Rule]] | None = None) -> None:
        self.rule_classes = list(rule_classes) if rule_classes is not None else all_rules()
        self.scope: list[str] = []
        #: How many findings the last ``analyze_source`` call silenced
        #: via per-line suppressions (reporters count silenced debt).
        self.last_suppressed: int = 0

    def in_reference_scope(self) -> bool:
        """Whether any enclosing function is a ``*reference*`` twin —
        the sequential executable-specification paths the SoA-boundary
        rule exempts by convention."""
        return any("reference" in name for name in self.scope)

    # ------------------------------------------------------------------
    # per-module walk
    # ------------------------------------------------------------------

    def analyze_source(self, path: str, source: str) -> list[Finding]:
        """Analyze one module given its source text.

        Returns every raw finding, suppressed ones already removed and
        unused-suppression findings (:data:`SUPPRESSION_CODE`) appended.
        Suppression consumption is per ``(line, code)``: an ``allow``
        naming a rule that never fired on its line is itself an error —
        stale suppressions rot into false confidence otherwise.
        """
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            ctx = ModuleContext(path, source, ast.Module(body=[], type_ignores=[]))
            return [
                ctx.finding(
                    "PARSE", int(error.lineno or 1), f"syntax error: {error.msg}"
                )
            ]
        ctx = ModuleContext(path, source, tree)
        sheet = SuppressionSheet.parse(source)
        rules = [cls() for cls in self.rule_classes if cls().applies(ctx)]
        findings: list[Finding] = []
        for rule in rules:
            findings.extend(rule.begin_module(ctx) or ())
        self.scope = []
        self._walk(ctx, tree, rules, findings)
        for rule in rules:
            findings.extend(rule.finish_module(ctx) or ())

        kept = [f for f in findings if not sheet.consume(f.line, f.code)]
        self.last_suppressed = len(findings) - len(kept)
        for line, message in sheet.problems():
            kept.append(ctx.finding(SUPPRESSION_CODE, line, message))
        kept.sort()
        return kept

    def analyze_file(self, path: Path, report_as: str | None = None) -> list[Finding]:
        """Analyze one file on disk (``report_as`` overrides the path
        string findings carry — used to keep baseline paths stable)."""
        source = path.read_text(encoding="utf-8")
        return self.analyze_source(report_as or path.as_posix(), source)

    def _walk(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        rules: Sequence[Rule],
        findings: list[Finding],
    ) -> None:
        scoped = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        if scoped:
            self.scope.append(node.name)  # type: ignore[attr-defined]
        handler_name = f"visit_{type(node).__name__}"
        for rule in rules:
            handler: Callable | None = getattr(rule, handler_name, None)
            if handler is not None:
                findings.extend(handler(ctx, node, self) or ())
        for child in ast.iter_child_nodes(node):
            self._walk(ctx, child, rules, findings)
        if scoped:
            self.scope.pop()


def relocate(finding: Finding, path: str) -> Finding:
    """A copy of ``finding`` reported under a different path string."""
    return replace(finding, path=path)
