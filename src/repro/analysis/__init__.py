"""Static analysis for the repo's determinism and SoA contracts.

``repro.analysis`` is the enforcement layer for the source-level
disciplines the differential test suites can only *sample*: labelled
RNG streams (:mod:`repro.rng`), exact uint64 keyspace geometry
(:mod:`repro.ring.keyspace`), and the struct-of-arrays boundary of the
engine kernels (:mod:`repro.core.soa`). See ``docs/determinism.md`` for
the contracts and rule codes, ``repro lint --help`` for the CLI.

Layout:

* :mod:`~repro.analysis.core` — Finding/Rule/Analyzer engine + registry
* :mod:`~repro.analysis.rules` — the six project rules (RNG001 ... DOC001)
* :mod:`~repro.analysis.suppressions` — ``# repro: allow[CODE]`` sheets
* :mod:`~repro.analysis.baseline` — committed grandfathered findings
* :mod:`~repro.analysis.reporters` — text / ``repro-lint/1`` JSON output
* :mod:`~repro.analysis.run` — orchestration + the ``repro lint`` argv entry
"""

from .baseline import BASELINE_CODE, Baseline, BaselineEntry
from .core import (
    Analyzer,
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    get_rule,
    iter_python_files,
    register_rule,
    resolve_codes,
)
from .reporters import JSON_SCHEMA, RunResult, render_json, render_text
from .run import build_parser, main, run_lint
from .suppressions import SUPPRESSION_CODE, SuppressionSheet

__all__ = [
    "Analyzer",
    "Baseline",
    "BaselineEntry",
    "BASELINE_CODE",
    "Finding",
    "JSON_SCHEMA",
    "ModuleContext",
    "Rule",
    "RunResult",
    "SUPPRESSION_CODE",
    "SuppressionSheet",
    "all_rules",
    "build_parser",
    "get_rule",
    "iter_python_files",
    "main",
    "register_rule",
    "render_json",
    "render_text",
    "resolve_codes",
    "run_lint",
]
