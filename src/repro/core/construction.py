"""Long-range link acquisition and rewiring (paper §2–3).

The acquisition procedure per outgoing slot of peer ``u``:

1. choose one logarithmic partition ``A_i`` uniformly at random;
2. draw candidate peers uniformly at random *within* ``A_i`` — two
   candidates when the "power of two choices" balancer is on, one
   otherwise;
3. every candidate below its ``rho_max_in`` acknowledges; among
   acknowledging candidates the one with the lower current in-degree is
   linked (ties: fewer spare slots first, then id, for determinism);
4. if nobody acknowledged, redraw — up to ``link_retries`` times — then
   give the slot up.

Peers thereby contribute *at most* what they are willing to (hard cap
invariant, enforced by :class:`~repro.core.node.OscarNode`), and the
choice-of-two keeps relative in-degree load even across heterogeneous
caps — the effect Figure 1(b) measures.

Rewiring ("periodically rewiring long-range links of all the peers")
drops every long link, re-estimates every partition table against the
*current* population, and re-acquires links in a random peer order so no
cohort systematically wins the race for scarce in-capacity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..config import OscarConfig
from ..protocol.decisions import accepts_link, link_winner_key
from ..ring import Ring
from ..types import NodeId
from .estimators import estimate_partitions
from .node import OscarNode
from .partitions import PartitionTable

if TYPE_CHECKING:  # pragma: no cover
    from .overlay import OscarOverlay

__all__ = ["acquire_links", "rewire_all", "LinkAcquisitionStats"]


class LinkAcquisitionStats:
    """Counters describing one acquisition run (diagnostics/ablations).

    ``conflicts`` counts requests that were acknowledged but lost the
    commit race for a candidate's last free slot within one acquisition
    round — only the round-based batched engine
    (:class:`repro.engine.construct.BatchConstructionEngine`) can lose
    such races; the one-peer-at-a-time scalar path always leaves it 0.
    """

    __slots__ = (
        "links_placed",
        "slots_given_up",
        "draws",
        "refusals",
        "empty_partition_draws",
        "conflicts",
    )

    def __init__(self) -> None:
        self.links_placed = 0
        self.slots_given_up = 0
        self.draws = 0
        self.refusals = 0
        self.empty_partition_draws = 0
        self.conflicts = 0

    def merge(self, other: "LinkAcquisitionStats") -> None:
        """Accumulate another run's counters into this one."""
        self.links_placed += other.links_placed
        self.slots_given_up += other.slots_given_up
        self.draws += other.draws
        self.refusals += other.refusals
        self.empty_partition_draws += other.empty_partition_draws
        self.conflicts += other.conflicts

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (stable key order) for artifacts and tests."""
        return {name: int(getattr(self, name)) for name in self.__slots__}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinkAcquisitionStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return (
            f"LinkAcquisitionStats(placed={self.links_placed}, given_up={self.slots_given_up}, "
            f"draws={self.draws}, refusals={self.refusals}, empty={self.empty_partition_draws}, "
            f"conflicts={self.conflicts})"
        )


def acquire_links(
    ring: Ring,
    nodes: dict[NodeId, OscarNode],
    node: OscarNode,
    config: OscarConfig,
    rng: np.random.Generator,
) -> LinkAcquisitionStats:
    """Fill ``node``'s outgoing slots using its current partition table.

    Requires ``node.partitions`` to be set. Already-held links are kept;
    only the remaining slots are filled (so the same routine serves both
    initial join and post-reset rewiring).
    """
    stats = LinkAcquisitionStats()
    table = node.partitions
    if table is None:
        raise ValueError(f"node {node.node_id} has no partition table yet")
    target = node.rho_max_out if config.respect_out_caps else max(node.rho_max_out, 1)
    existing = set(node.out_links)

    while len(node.out_links) < target:
        placed = _acquire_one(ring, nodes, node, table, config, rng, existing, stats)
        if not placed:
            stats.slots_given_up += 1
            break
    return stats


def _acquire_one(
    ring: Ring,
    nodes: dict[NodeId, OscarNode],
    node: OscarNode,
    table: PartitionTable,
    config: OscarConfig,
    rng: np.random.Generator,
    existing: set[NodeId],
    stats: LinkAcquisitionStats,
) -> bool:
    """Try to place a single long link; True on success."""
    n_candidates = 2 if config.power_of_two else 1
    for __ in range(config.link_retries + 1):
        stats.draws += 1
        arc = table.arc(table.sample_partition(rng))
        if arc is None:
            stats.empty_partition_draws += 1
            continue
        drawn = ring.choose_in_cw_range(rng, arc[0], arc[1], k=n_candidates, live_only=True)
        if drawn.size == 0:
            stats.empty_partition_draws += 1
            continue
        accepting: list[OscarNode] = []
        for candidate_id in sorted({int(c) for c in drawn}):
            if candidate_id == node.node_id or candidate_id in existing:
                continue
            candidate = nodes[candidate_id]
            if accepts_link(candidate.in_degree, candidate.rho_max_in):
                accepting.append(candidate)
            else:
                stats.refusals += 1
        if not accepting:
            continue
        # Power of two choices: the shared protocol winner key — lowest
        # current in-degree, ties toward more spare capacity, then id.
        chosen = min(
            accepting, key=lambda c: link_winner_key(c.in_degree, c.rho_max_in, c.node_id)
        )
        chosen.accept_in_link()
        node.out_links.append(chosen.node_id)
        existing.add(chosen.node_id)
        stats.links_placed += 1
        return True
    return False


def rewire_all(overlay: "OscarOverlay", rng: np.random.Generator) -> LinkAcquisitionStats:
    """Global rewiring round: re-estimate all partitions, re-acquire links.

    Order of operations matters and mirrors what concurrent peers would
    observe over a rewiring epoch:

    1. all long links are dropped and in-degrees reset (teardown);
    2. every peer re-estimates its partition table against the current
       population (estimation sees no long links in WALK mode beyond the
       ring, exactly like a fresh bootstrap epoch);
    3. peers re-acquire links one by one in a random order.
    """
    nodes = overlay.nodes
    live_ids = [nid for nid in overlay.ring.node_ids(live_only=True)]

    for node_id in live_ids:
        node = nodes[node_id]
        node.reset_links()
        node.in_degree = 0

    for node_id in live_ids:
        node = nodes[node_id]
        node.partitions = estimate_partitions(
            overlay.ring,
            node_id,
            overlay.config,
            rng,
            neighbor_fn=overlay.neighbors_of,
        )
        node.samples_spent += overlay.config.sample_size * max(
            0, (node.partitions.n_partitions - 1)
        )

    order = np.array(live_ids, dtype=np.int64)
    rng.shuffle(order)
    total = LinkAcquisitionStats()
    for node_id in order:
        total.merge(acquire_links(overlay.ring, nodes, nodes[int(node_id)], overlay.config, rng))
    return total
