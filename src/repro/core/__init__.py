"""Oscar core: the paper's primary contribution.

* :class:`PartitionTable` — recursive-median logarithmic partitions;
* :func:`estimate_partitions` — oracle / uniform-sample / restricted-walk
  estimators;
* :func:`acquire_links` / :func:`rewire_all` — capacity-respecting link
  acquisition with power-of-two balancing;
* :class:`OscarOverlay` — the facade tying ring, links and routing
  together;
* :class:`SubstrateState` — the struct-of-arrays store every substrate's
  per-peer columns live in (:class:`OscarNode` and friends are views).
"""

from .construction import LinkAcquisitionStats, acquire_links, rewire_all
from .estimators import estimate_partitions, oracle_partitions, sampled_partitions
from .node import OscarNode, StateNodeView
from .overlay import OscarOverlay
from .partitions import PartitionTable
from .soa import FingerTable, LinkView, NodeTable, SubstrateState
from .substrate import Substrate

__all__ = [
    "FingerTable",
    "LinkAcquisitionStats",
    "LinkView",
    "NodeTable",
    "OscarNode",
    "OscarOverlay",
    "PartitionTable",
    "StateNodeView",
    "Substrate",
    "SubstrateState",
    "acquire_links",
    "estimate_partitions",
    "oracle_partitions",
    "rewire_all",
    "sampled_partitions",
]
