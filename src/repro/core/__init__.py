"""Oscar core: the paper's primary contribution.

* :class:`PartitionTable` — recursive-median logarithmic partitions;
* :func:`estimate_partitions` — oracle / uniform-sample / restricted-walk
  estimators;
* :func:`acquire_links` / :func:`rewire_all` — capacity-respecting link
  acquisition with power-of-two balancing;
* :class:`OscarOverlay` — the facade tying ring, links and routing
  together.
"""

from .construction import LinkAcquisitionStats, acquire_links, rewire_all
from .estimators import estimate_partitions, oracle_partitions, sampled_partitions
from .node import OscarNode
from .overlay import OscarOverlay
from .partitions import PartitionTable
from .substrate import Substrate

__all__ = [
    "LinkAcquisitionStats",
    "OscarNode",
    "OscarOverlay",
    "PartitionTable",
    "Substrate",
    "acquire_links",
    "estimate_partitions",
    "oracle_partitions",
    "rewire_all",
    "sampled_partitions",
]
