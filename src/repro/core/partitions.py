"""Logarithmic partitions with recursive-median borders (paper §2).

An Oscar node ``u`` divides the rest of the population, ordered
*clockwise from itself*, into partitions ``A_1 .. A_k``:

* ``A_1`` — the clockwise-farthest half of all other peers,
* ``A_2`` — the farthest half of what remains, and so on;
* ``A_k`` — whatever remains nearest to ``u``.

The border between ``A_i`` and ``A_{i+1}`` is the *median* ``m_i`` of the
subpopulation ``P \\ (A_1 ∪ .. ∪ A_{i-1})`` in clockwise order from
``u`` — so ideally ``|A_1| = n/2``, ``|A_2| = n/4``, ... Choosing a
partition uniformly and then a member uniformly approximates Kleinberg's
harmonic rank distribution for any key skew, which is what makes the
network greedily navigable.

A :class:`PartitionTable` is the *result* of that construction — origin
plus the ordered median borders — regardless of whether the medians were
computed exactly (oracle) or estimated from samples
(:mod:`repro.core.estimators`).

Geometry conventions: partition ``A_i`` is the clockwise arc
``(m_i, m_{i-1}]`` with ``m_0 = origin`` playing the far end (the arc
"ends" back at the node) and the innermost partition starting at the
origin. All arcs are ``(start, end]`` intervals as in
:func:`repro.ring.in_cw_interval`; the origin position itself belongs to
no partition (a node is never its own long-range neighbor).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PartitionError
from ..ring.identifiers import cw_distance, in_cw_interval

__all__ = ["PartitionTable"]


@dataclass(frozen=True)
class PartitionTable:
    """Origin + recursive-median borders, farthest partition first.

    Attributes:
        origin: The owning node's position.
        far_end: End of the outermost arc — the position of the node's
            ring predecessor (the clockwise-farthest peer). Using the
            true predecessor instead of the origin avoids the degenerate
            "whole-circle" interval and guarantees the node itself can
            never be selected.
        medians: ``(m_1, m_2, ..., m_j)`` — strictly decreasing clockwise
            distance from ``origin``; ``j + 1`` partitions result. May be
            empty (tiny populations): then the single partition is the
            whole population.
    """

    origin: float
    far_end: float
    medians: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        # Monotonicity is validated with comparisons only (the same
        # ``(start, end]`` predicate the arcs are later read with), not
        # with the subtractive float metric: subtraction rounds, so a
        # border a denormal step outside its arc could measure as inside
        # (or vice versa). Comparison order is exact at full float
        # resolution, which is exactly what makes the arcs provably tile
        # ``(origin, far_end]``.
        previous = self.far_end
        for index, median in enumerate(self.medians):
            inside = median == self.origin or (
                previous != self.origin
                and in_cw_interval(median, self.origin, previous)
            )
            if not inside:
                reference = "the far end" if index == 0 else f"median {index}"
                raise PartitionError(
                    f"median {index + 1} at {median!r} lies beyond {reference} "
                    f"(cw distance {cw_distance(self.origin, median):.6f} vs "
                    f"{cw_distance(self.origin, previous):.6f}); medians must "
                    f"shrink monotonically toward the origin"
                )
            previous = median

    @property
    def n_partitions(self) -> int:
        """Number of partitions (``len(medians) + 1``)."""
        return len(self.medians) + 1

    def arc(self, index: int) -> tuple[float, float] | None:
        """Clockwise arc ``(start, end]`` of 1-indexed partition ``index``.

        Returns ``None`` for a degenerate (provably empty) arc, which can
        arise from sampling noise when two consecutive medians coincide.
        """
        if not 1 <= index <= self.n_partitions:
            raise PartitionError(f"partition index must be in [1, {self.n_partitions}], got {index}")
        ends = (self.far_end,) + self.medians  # m_0 (= far end), m_1, ..., m_j
        end = ends[index - 1]
        start = self.medians[index - 1] if index <= len(self.medians) else self.origin
        if start == end and index > 1:
            return None
        return (start, end)

    def arcs(self) -> list[tuple[float, float] | None]:
        """All partition arcs, outermost first (index 1 .. k)."""
        return [self.arc(i) for i in range(1, self.n_partitions + 1)]

    def partition_of(self, key: float) -> int:
        """1-indexed partition containing ``key``.

        Raises :class:`PartitionError` when ``key`` equals the origin or
        lies beyond the far end (i.e. on the owner itself).
        """
        if key == self.origin:
            raise PartitionError("the origin belongs to no partition")
        for index in range(1, self.n_partitions + 1):
            bounds = self.arc(index)
            if bounds is not None and in_cw_interval(key, bounds[0], bounds[1]):
                return index
        # The arcs tile ``(origin, far_end]`` exactly, so reaching this
        # point means the comparison-based predicate places ``key`` in the
        # owner's gap ``(far_end, origin)``. The subtractive metric is
        # coarser: a key separated from ``far_end`` by less than one float
        # rounding step measures *exactly* the far-end distance (e.g. key
        # 1.4e-45 with origin 0.1 rounds to 0.9). When metric and
        # predicate disagree like that, the metric's verdict — "at the
        # far-end boundary" — wins, and boundary keys belong to the
        # outermost arc (arcs are end-inclusive).
        distance = cw_distance(self.origin, key)
        far_distance = cw_distance(self.origin, self.far_end)
        if distance <= far_distance:
            return 1
        raise PartitionError(
            f"key {key!r} lies outside every partition of origin {self.origin!r}: "
            f"cw distance {distance!r} exceeds the far-end distance {far_distance!r}\n"
            + self.describe()
        )

    def sample_partition(self, rng: np.random.Generator) -> int:
        """Draw a partition index uniformly — step one of link acquisition."""
        return int(rng.integers(1, self.n_partitions + 1))

    def describe(self) -> str:
        """Human-readable dump used by diagnostics and the CLI."""
        parts = [f"PartitionTable(origin={self.origin:.6f}, k={self.n_partitions})"]
        for i, bounds in enumerate(self.arcs(), start=1):
            if bounds is None:
                parts.append(f"  A_{i}: <empty>")
            else:
                width = cw_distance(bounds[0], bounds[1])
                parts.append(f"  A_{i}: ({bounds[0]:.6f}, {bounds[1]:.6f}] width={width:.6f}")
        return "\n".join(parts)
