"""Per-peer state of the Oscar overlay.

A node's state is deliberately small: capacities, its current partition
table, and its link sets. Link *semantics* (acceptance, choice-of-two,
rewiring) live in :mod:`repro.core.construction`; the node only does the
local bookkeeping a real peer would do.

Since the struct-of-arrays refactor a node object is a *view*: it holds
``(state, slot)`` and every attribute reads or writes one cell of the
shared :class:`~repro.core.soa.SubstrateState`. Overlay-owned nodes
share the overlay's state (so the batch kernels see the same cells);
a node constructed directly — ``OscarNode(node_id=..., position=...)``
— owns a private one-slot state, which keeps the old dataclass
constructor and the standalone-population tests working unchanged.
"""

from __future__ import annotations

import math

from ..errors import CapacityExhaustedError
from ..ring import keyspace
from ..types import NodeId
from .partitions import PartitionTable
from .soa import LinkView, SubstrateState

__all__ = ["OscarNode", "StateNodeView"]


class StateNodeView:
    """Shared view machinery for Oscar/Mercury per-peer objects."""

    __slots__ = ("_state", "_slot")

    @classmethod
    def _view(cls, state: SubstrateState, slot: int):
        """Wrap an existing slot (the overlay/NodeTable path)."""
        obj = object.__new__(cls)
        obj._state = state
        obj._slot = int(slot)
        return obj

    def _init_standalone(
        self,
        node_id: NodeId,
        position: float,
        rho_max_in: int,
        rho_max_out: int,
        out_links,
        in_degree: int,
        samples_spent: int,
    ) -> None:
        state = SubstrateState(1)
        pos = float(position)
        key = (
            keyspace.from_unit(pos)
            if math.isfinite(pos) and 0.0 <= pos < 1.0
            else 0
        )
        slot = state.alloc_one(int(node_id), pos, key)
        state.cap_in[slot] = int(rho_max_in)
        state.cap_out[slot] = int(rho_max_out)
        self._state = state
        self._slot = slot
        if out_links:
            LinkView(state, slot).extend(out_links)
        if in_degree:
            state.in_deg[slot] = int(in_degree)
        if samples_spent:
            state.samples_spent[slot] = int(samples_spent)

    # -- array-backed fields ------------------------------------------

    @property
    def node_id(self) -> int:
        return int(self._state.node_id[self._slot])

    @property
    def position(self) -> float:
        return float(self._state.pos[self._slot])

    @position.setter
    def position(self, value: float) -> None:
        pos = float(value)
        self._state.pos[self._slot] = pos
        self._state.key[self._slot] = (
            keyspace.from_unit(pos)
            if math.isfinite(pos) and 0.0 <= pos < 1.0
            else 0
        )

    @property
    def rho_max_in(self) -> int:
        return int(self._state.cap_in[self._slot])

    @rho_max_in.setter
    def rho_max_in(self, value: int) -> None:
        self._state.cap_in[self._slot] = int(value)

    @property
    def rho_max_out(self) -> int:
        return int(self._state.cap_out[self._slot])

    @rho_max_out.setter
    def rho_max_out(self, value: int) -> None:
        self._state.cap_out[self._slot] = int(value)

    @property
    def in_degree(self) -> int:
        return int(self._state.in_deg[self._slot])

    @in_degree.setter
    def in_degree(self, value: int) -> None:
        self._state.in_deg[self._slot] = int(value)

    @property
    def out_links(self) -> LinkView:
        return LinkView(self._state, self._slot)

    @property
    def samples_spent(self) -> int:
        return int(self._state.samples_spent[self._slot])

    @samples_spent.setter
    def samples_spent(self, value: int) -> None:
        self._state.samples_spent[self._slot] = int(value)

    # -- shared protocol ----------------------------------------------

    @property
    def can_accept(self) -> bool:
        """Whether this peer acknowledges one more incoming long link."""
        return self.in_degree < self.rho_max_in

    def accept_in_link(self) -> None:
        """Register an incoming link; raises if the cap is exhausted.

        The raise (rather than a silent clamp) enforces the protocol: the
        requesting peer must have asked first, so hitting this means a
        bug in link acquisition, not an unlucky draw.
        """
        if not self.can_accept:
            raise CapacityExhaustedError(
                f"node {self.node_id} is at its in-degree cap ({self.rho_max_in})"
            )
        self._state.in_deg[self._slot] += 1

    def reset_links(self) -> None:
        """Forget outgoing links (the caller fixes the targets' in-degrees)."""
        self.out_links.clear()


class OscarNode(StateNodeView):
    """One Oscar peer.

    Attributes:
        node_id: Stable id (dense integer, assigned at join).
        position: Key-space position in ``[0, 1)``.
        rho_max_in: Max incoming long links this peer accepts — its
            locally chosen contribution budget.
        rho_max_out: Max outgoing long links it tries to hold.
        out_links: Current outgoing long-range neighbors (ordered,
            duplicates disallowed). Ring links are *not* stored here —
            they live in the shared :class:`~repro.ring.RingPointers`
            and are exempt from caps, as the ring is mandatory.
        in_degree: Count of long links currently pointing at this peer.
        partitions: The node's current view of the key space; ``None``
            until first estimated.
        samples_spent: Cumulative sampling messages this peer has issued
            (cost-accounting for the sampling ablation).
    """

    __slots__ = ()

    def __init__(
        self,
        node_id: NodeId,
        position: float,
        rho_max_in: int,
        rho_max_out: int,
        out_links=None,
        in_degree: int = 0,
        partitions: PartitionTable | None = None,
        samples_spent: int = 0,
    ) -> None:
        self._init_standalone(
            node_id, position, rho_max_in, rho_max_out, out_links, in_degree, samples_spent
        )
        if partitions is not None:
            self.partitions = partitions

    @property
    def partitions(self) -> PartitionTable | None:
        state, slot = self._state, self._slot
        n = int(state.n_medians[slot])
        if n < 0:
            return None
        return PartitionTable(
            origin=float(state.part_origin[slot]),
            far_end=float(state.part_far_end[slot]),
            medians=tuple(float(x) for x in state.medians[slot, :n]),
        )

    @partitions.setter
    def partitions(self, table: PartitionTable | None) -> None:
        state, slot = self._state, self._slot
        if table is None:
            state.n_medians[slot] = -1
            return
        medians = table.medians
        state.part_origin[slot] = table.origin
        state.part_far_end[slot] = table.far_end
        if medians:
            state.ensure_median_width(len(medians))
            state.medians[slot, : len(medians)] = medians
        state.n_medians[slot] = len(medians)

    @property
    def wants_more_links(self) -> bool:
        """Whether this peer still has unused outgoing slots."""
        return len(self.out_links) < self.rho_max_out

    @property
    def spare_in_capacity(self) -> int:
        """Remaining incoming slots (>= 0)."""
        return max(0, self.rho_max_in - self.in_degree)

    def drop_in_link(self) -> None:
        """Unregister an incoming link (rewiring teardown)."""
        if self.in_degree <= 0:
            raise CapacityExhaustedError(f"node {self.node_id} has no incoming links to drop")
        self._state.in_deg[self._slot] -= 1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OscarNode):
            return (
                self.node_id,
                self.position,
                self.rho_max_in,
                self.rho_max_out,
                list(self.out_links),
                self.in_degree,
                self.partitions,
                self.samples_spent,
            ) == (
                other.node_id,
                other.position,
                other.rho_max_in,
                other.rho_max_out,
                list(other.out_links),
                other.in_degree,
                other.partitions,
                other.samples_spent,
            )
        return NotImplemented

    __hash__ = None  # mutable view, same as the old (unfrozen) dataclass

    def __repr__(self) -> str:
        return (
            f"OscarNode(id={self.node_id}, pos={self.position:.6f}, "
            f"out={len(self.out_links)}/{self.rho_max_out}, in={self.in_degree}/{self.rho_max_in})"
        )
