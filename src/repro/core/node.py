"""Per-peer state of the Oscar overlay.

A node's state is deliberately small: capacities, its current partition
table, and its link sets. Link *semantics* (acceptance, choice-of-two,
rewiring) live in :mod:`repro.core.construction`; the node only does the
local bookkeeping a real peer would do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CapacityExhaustedError
from ..types import NodeId
from .partitions import PartitionTable

__all__ = ["OscarNode"]


@dataclass
class OscarNode:
    """One Oscar peer.

    Attributes:
        node_id: Stable id (dense integer, assigned at join).
        position: Key-space position in ``[0, 1)``.
        rho_max_in: Max incoming long links this peer accepts — its
            locally chosen contribution budget.
        rho_max_out: Max outgoing long links it tries to hold.
        out_links: Current outgoing long-range neighbors (ordered,
            duplicates disallowed). Ring links are *not* stored here —
            they live in the shared :class:`~repro.ring.RingPointers`
            and are exempt from caps, as the ring is mandatory.
        in_degree: Count of long links currently pointing at this peer.
        partitions: The node's current view of the key space; ``None``
            until first estimated.
        samples_spent: Cumulative sampling messages this peer has issued
            (cost-accounting for the sampling ablation).
    """

    node_id: NodeId
    position: float
    rho_max_in: int
    rho_max_out: int
    out_links: list[NodeId] = field(default_factory=list)
    in_degree: int = 0
    partitions: PartitionTable | None = None
    samples_spent: int = 0

    @property
    def can_accept(self) -> bool:
        """Whether this peer acknowledges one more incoming long link."""
        return self.in_degree < self.rho_max_in

    @property
    def wants_more_links(self) -> bool:
        """Whether this peer still has unused outgoing slots."""
        return len(self.out_links) < self.rho_max_out

    @property
    def spare_in_capacity(self) -> int:
        """Remaining incoming slots (>= 0)."""
        return max(0, self.rho_max_in - self.in_degree)

    def accept_in_link(self) -> None:
        """Register an incoming link; raises if the cap is exhausted.

        The raise (rather than a silent clamp) enforces the protocol: the
        requesting peer must have asked first, so hitting this means a
        bug in link acquisition, not an unlucky draw.
        """
        if not self.can_accept:
            raise CapacityExhaustedError(
                f"node {self.node_id} is at its in-degree cap ({self.rho_max_in})"
            )
        self.in_degree += 1

    def drop_in_link(self) -> None:
        """Unregister an incoming link (rewiring teardown)."""
        if self.in_degree <= 0:
            raise CapacityExhaustedError(f"node {self.node_id} has no incoming links to drop")
        self.in_degree -= 1

    def reset_links(self) -> None:
        """Forget outgoing links (the caller fixes the targets' in-degrees)."""
        self.out_links.clear()

    def __repr__(self) -> str:
        return (
            f"OscarNode(id={self.node_id}, pos={self.position:.6f}, "
            f"out={len(self.out_links)}/{self.rho_max_out}, in={self.in_degree}/{self.rho_max_in})"
        )
