"""The unified overlay surface every substrate implements.

The paper's evaluation compares Oscar against Chord- and Mercury-style
substrates under identical workloads. On the code side that comparison
only stays honest if all three systems expose *one* surface that the
measurement layer drives blindly — otherwise every experiment grows its
own per-overlay loop and the workloads silently diverge.

:class:`Substrate` is that surface: membership (``join`` / ``leave`` /
``grow``), maintenance (``rewire`` / ``repair_ring``), topology access
(``neighbors_of``), routing (``route``) and sizing (``size`` /
``__len__``). :class:`~repro.core.overlay.OscarOverlay`,
:class:`~repro.chord.overlay.ChordOverlay` and
:class:`~repro.mercury.overlay.MercuryOverlay` all satisfy it, and the
batched query engine (:mod:`repro.engine.batch`) accepts any
implementation.

``join`` signatures legitimately differ (Oscar and Mercury joins carry
capacity caps; a Chord join hashes an application key), so the protocol
pins only its return type; ``grow`` is the uniform bulk entry point —
every substrate accepts ``(target_size, keys, degrees)`` and ignores
what its protocol does not use.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..ring import Ring, RingPointers
from ..routing import RouteResult
from ..types import Key, NodeId

__all__ = ["Substrate"]


@runtime_checkable
class Substrate(Protocol):
    """A routable overlay under simulation — the shared facade contract.

    Implementations additionally expose a ``topology_version`` property:
    a monotonic counter that changes whenever membership *or* link
    structure changes, so derived caches (the batch engine's topology
    snapshot) can validate themselves cheaply instead of subscribing to
    mutation callbacks.
    """

    ring: Ring
    pointers: RingPointers

    # -- membership ----------------------------------------------------

    def join(self, *args: object, **kwargs: object) -> NodeId:
        """Add one peer; per-substrate signature (caps vs hashed key)."""
        ...

    def leave(self, node_id: NodeId, repair: bool = True) -> None:
        """Remove a peer from the live population (graceful departure)."""
        ...

    def leave_batch(self, node_ids: Sequence[NodeId], repair: bool = True) -> int:
        """Remove many peers from the live population in one bulk step.

        The departure mirror of :meth:`grow_batch`: all peers are marked
        dead first and the ring is re-stabilized *once* at the end
        (``repair=True``, the paper's self-stabilization assumption)
        instead of once per departure. Long links keep pointing at the
        dead peers — discovering that costs the fault-aware router a
        probe, exactly as after a crash wave. Oscar repairs through the
        bulk :func:`~repro.ring.maintenance.repair_all` rebuild;
        Chord and Mercury fall back to scalar departures with one final
        repair — identical resulting state either way. Returns the
        number of pointer entries the repair fixed (0 with
        ``repair=False``).
        """
        ...

    def grow(
        self,
        target_size: int,
        keys: object,
        degrees: object,
        paired_caps: bool = True,
    ) -> None:
        """Grow to ``target_size`` live peers by sampled joins."""
        ...

    def grow_batch(
        self,
        target_size: int,
        keys: object,
        degrees: object,
        paired_caps: bool = True,
        vectorized: bool = True,
    ) -> object:
        """Grow to ``target_size`` live peers in one bulk construction
        step — vectorized where the substrate supports it (Oscar's
        :class:`~repro.engine.construct.BatchConstructionEngine`);
        substrates whose construction is already cheap (Chord's
        deterministic fingers, Mercury's histogram wiring) fall back to
        scalar :meth:`grow`. Statistically equivalent to ``grow`` but
        not draw-for-draw aligned with it. ``vectorized=False`` selects
        the bit-identical pure-Python reference path where one exists
        (Oscar); scalar-fallback substrates accept and ignore it."""
        ...

    # -- maintenance ---------------------------------------------------

    def rewire(self, rng: np.random.Generator | None = None) -> object:
        """One global long-link (or finger) rebuild round."""
        ...

    def rewire_batch(
        self,
        rng: np.random.Generator | None = None,
        vectorized: bool = True,
    ) -> object:
        """One global rebuild round through the batched construction
        path, with scalar :meth:`rewire` as the fallback semantics for
        substrates without a vectorized builder. ``vectorized=False``
        selects the bit-identical pure-Python reference path where one
        exists (Oscar); scalar-fallback substrates accept and ignore
        it."""
        ...

    def repair_ring(self) -> int:
        """Re-stabilize ring pointers after churn; returns pointers fixed."""
        ...

    # -- topology + routing --------------------------------------------

    def neighbors_of(self, node_id: NodeId) -> Sequence[NodeId]:
        """Outgoing neighbor ids (ring pointers + long links / fingers)."""
        ...

    def random_live_node(self, rng: np.random.Generator | None = None) -> NodeId:
        """A uniformly random live peer."""
        ...

    def route(
        self,
        source: NodeId,
        target_key: Key,
        faulty: bool = False,
        record_path: bool = False,
    ) -> RouteResult:
        """Route a single lookup (the scalar reference path)."""
        ...

    # -- sizing --------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of currently live peers."""
        ...

    def __len__(self) -> int:
        """Alias of :attr:`size` (live peer count)."""
        ...
