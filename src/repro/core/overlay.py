"""The Oscar overlay facade — the library's primary public object.

:class:`OscarOverlay` ties the substrates together: the membership ring,
maintained ring pointers, per-peer state, partition estimation, link
acquisition, rewiring, and routing. It implements the
:class:`~repro.routing.NeighborProvider` protocol so both routers work
against it directly.

Typical use::

    from repro import OscarOverlay, OscarConfig
    from repro.workloads import GnutellaLikeDistribution
    from repro.degree import ConstantDegrees
    from repro import rng as rngmod

    overlay = OscarOverlay(OscarConfig(), seed=42)
    keys = GnutellaLikeDistribution()
    caps = ConstantDegrees(27)
    overlay.grow(1000, keys, caps)
    result = overlay.route(source=overlay.random_live_node(), target_key=0.25)
    print(result.hops, result.success)
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..config import OscarConfig, RoutingConfig
from ..degree import DegreeDistribution, assign_caps
from ..errors import DuplicateNodeError, EmptyPopulationError, UnknownNodeError
from ..ring import Ring, RingPointers, attach_node
from ..ring import repair as repair_ring
from ..ring import repair_all as bulk_repair_ring
from ..routing import RouteResult, route_faulty, route_greedy
from ..rng import split
from ..types import Key, NodeId
from ..workloads import KeyDistribution
from .construction import LinkAcquisitionStats, acquire_links, rewire_all
from .estimators import estimate_partitions
from .node import OscarNode
from .soa import NodeTable, SubstrateState

__all__ = ["OscarOverlay"]


class OscarOverlay:
    """A full Oscar network under simulation.

    Args:
        config: Construction parameters (partitions, sampling, caps
            behaviour, power-of-two).
        seed: Root seed; all internal randomness derives from it via
            labelled streams, so two overlays with equal arguments are
            identical.
        routing: Router cost model (budgets, probe/backtrack charges).
    """

    def __init__(
        self,
        config: OscarConfig | None = None,
        seed: int = 42,
        routing: RoutingConfig | None = None,
    ) -> None:
        self.config = config or OscarConfig()
        self.routing = routing or RoutingConfig()
        self.seed = seed
        self.state = SubstrateState()
        self.ring = Ring(self.state)
        self.pointers = RingPointers()
        self.nodes = NodeTable(self.state, OscarNode._view)
        self._next_id = 0
        self._links_epoch = 0
        self._join_rng = split(seed, "join")
        self._rewire_rng = split(seed, "rewire")

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def join(self, position: Key, rho_max_in: int, rho_max_out: int) -> NodeId:
        """Add a peer at ``position`` with the given capacity caps.

        The new peer is spliced into the ring, estimates its partitions
        against the current population and immediately acquires long
        links (bounded by the caps of already-present peers). Raises
        :class:`DuplicateNodeError` on position collision — callers
        redraw their key.
        """
        node_id = self._next_id
        self.ring.insert(node_id, position)  # raises DuplicateNodeError on collision
        self._next_id += 1
        slot = self.state.slot_of(node_id)
        self.state.cap_in[slot] = int(rho_max_in)
        self.state.cap_out[slot] = int(rho_max_out)
        node = self.nodes[node_id]
        self._attach_pointers(node_id)
        if self.ring.live_count > 1:
            node.partitions = estimate_partitions(
                self.ring, node_id, self.config, self._join_rng, neighbor_fn=self.neighbors_of
            )
            acquire_links(self.ring, self.nodes, node, self.config, self._join_rng)
        return node_id

    def grow(
        self,
        target_size: int,
        keys: KeyDistribution,
        degrees: DegreeDistribution,
        paired_caps: bool = True,
    ) -> None:
        """Grow the network to ``target_size`` live peers by joins.

        Keys come from ``keys`` (collisions redrawn), caps from
        ``degrees``. Growth is incremental — existing links stay as they
        are until :meth:`rewire` is called, mirroring the paper's
        bootstrap-then-periodically-rewire procedure.
        """
        current = self.ring.live_count
        missing = target_size - current
        if missing <= 0:
            return
        caps_in, caps_out = assign_caps(degrees, self._join_rng, missing, paired=paired_caps)
        joined = 0
        while joined < missing:
            key = float(keys.sample(self._join_rng, 1)[0])
            try:
                self.join(key, int(caps_in[joined]), int(caps_out[joined]))
            except DuplicateNodeError:
                continue
            joined += 1

    def grow_batch(
        self,
        target_size: int,
        keys: KeyDistribution,
        degrees: DegreeDistribution,
        paired_caps: bool = True,
        vectorized: bool = True,
    ) -> LinkAcquisitionStats:
        """Grow to ``target_size`` live peers in one vectorized bulk step.

        The batched counterpart of :meth:`grow`: newcomers are spliced
        into the ring with one sorted merge, then estimate partitions
        and acquire links as a single lock-step cohort through
        :class:`~repro.engine.construct.BatchConstructionEngine`.
        Existing peers keep their links (the same incremental contract
        as ``grow``); the two paths are statistically equivalent but not
        draw-for-draw aligned, so they build different (equally valid)
        overlays from the same seed. ``vectorized=False`` runs the
        engine's pure-Python sequential reference on the identical RNG
        stream — bit-identical output, used by equivalence tests and
        the churn engine's reference path. Returns the cohort's
        :class:`~repro.core.construction.LinkAcquisitionStats`.
        """
        from ..engine.construct import BatchConstructionEngine  # lazy: import cycle

        return BatchConstructionEngine(self, vectorized=vectorized).grow(
            target_size, keys, degrees, paired_caps=paired_caps
        )

    def leave(self, node_id: NodeId, repair: bool = True) -> None:
        """Remove a live peer from the population (graceful departure).

        The peer is marked dead in the ring — its long links stay as
        dangling references, exactly like a crash — and, when ``repair``
        is true (the default, matching the paper's self-stabilization
        assumption), ring pointers are immediately re-stabilized around
        the gap. Pass ``repair=False`` to model an abrupt crash whose
        repair is deferred to churn machinery.
        """
        self.ring.mark_dead(node_id)
        if repair:
            self.repair_ring()

    def leave_batch(self, node_ids: Sequence[NodeId], repair: bool = True) -> int:
        """Remove many peers in one bulk step (see
        :meth:`Substrate.leave_batch
        <repro.core.substrate.Substrate.leave_batch>`).

        All departures are marked dead through
        :meth:`OracleView.crash
        <repro.membership.views.OracleView.crash>`, then the ring is
        re-stabilized once via the bulk
        :func:`~repro.ring.maintenance.repair_all` rebuild — identical
        resulting pointers to per-peer :meth:`leave` calls, one repair
        pass instead of K. Returns the pointer entries fixed.
        """
        from ..membership import OracleView  # lazy: import cycle

        OracleView(self.ring).crash(node_ids)
        if not repair:
            return 0
        self._links_epoch += 1
        return bulk_repair_ring(self.ring, self.pointers)

    def _attach_pointers(self, node_id: NodeId) -> None:
        """Splice a fresh peer into the maintained ring pointers."""
        attach_node(self.ring, self.pointers, node_id)

    # ------------------------------------------------------------------
    # topology access (NeighborProvider)
    # ------------------------------------------------------------------

    def neighbors_of(self, node_id: NodeId) -> Sequence[NodeId]:
        """Outgoing neighbors: ring successor + predecessor + long links.

        Includes links currently pointing at dead peers — discovering
        that costs the router a probe, as in a real deployment.
        """
        node = self.nodes.get(node_id)
        if node is None:
            raise UnknownNodeError(node_id)
        out: list[NodeId] = []
        succ = self.pointers.successor.get(node_id)
        pred = self.pointers.predecessor.get(node_id)
        if succ is not None and succ != node_id:
            out.append(succ)
        if pred is not None and pred != node_id and pred != succ:
            out.append(pred)
        out.extend(node.out_links)
        return out

    def random_live_node(self, rng: np.random.Generator | None = None) -> NodeId:
        """A uniformly random live peer (convenience for examples)."""
        ids = self.ring.ids_array(live_only=True)
        if ids.size == 0:
            raise EmptyPopulationError("overlay has no live peers")
        generator = rng if rng is not None else self._join_rng
        return int(ids[int(generator.integers(0, ids.size))])

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def rewire(self, rng: np.random.Generator | None = None) -> LinkAcquisitionStats:
        """One global rewiring round (see
        :func:`repro.core.construction.rewire_all`)."""
        self._links_epoch += 1
        return rewire_all(self, rng if rng is not None else self._rewire_rng)

    def rewire_batch(
        self,
        rng: np.random.Generator | None = None,
        vectorized: bool = True,
    ) -> LinkAcquisitionStats:
        """One global rewiring round, vectorized.

        Same epoch semantics as :meth:`rewire` (teardown, re-estimation
        against the current population, re-acquisition under a random
        peer priority) executed by the
        :class:`~repro.engine.construct.BatchConstructionEngine` in
        lock-step numpy rounds — ≥5× faster at 10k peers. Batched and
        scalar rewiring consume the RNG differently, so the resulting
        overlays differ per-link while obeying the identical invariants.
        ``vectorized=False`` runs the engine's sequential reference on
        the same stream instead — bit-identical to the vectorized round.
        """
        from ..engine.construct import BatchConstructionEngine  # lazy: import cycle

        self._links_epoch += 1
        return BatchConstructionEngine(self, vectorized=vectorized).rewire(
            rng if rng is not None else self._rewire_rng
        )

    def repair_ring(self) -> int:
        """Re-stabilize ring pointers after churn; returns pointers fixed."""
        self._links_epoch += 1
        return repair_ring(self.ring, self.pointers)

    @property
    def topology_version(self) -> tuple[int, int]:
        """Changes whenever membership or link structure changes.

        The pair ``(ring membership version, link epoch)`` — compared by
        the batch engine to validate its cached topology snapshot.
        """
        return (self.ring.version, self._links_epoch)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def route(
        self,
        source: NodeId,
        target_key: Key,
        faulty: bool = False,
        record_path: bool = False,
    ) -> RouteResult:
        """Route one lookup; ``faulty=True`` uses the probing/backtracking
        router required when the overlay contains crashed peers."""
        if faulty:
            return route_faulty(
                self.ring, self.pointers, self, source, target_key, self.routing, record_path
            )
        return route_greedy(
            self.ring, self.pointers, self, source, target_key, self.routing, record_path
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def live_nodes(self) -> Iterable[OscarNode]:
        """Live peers' states, in ring order."""
        for node_id in self.ring.node_ids(live_only=True):
            yield self.nodes[node_id]

    def in_degree_array(self) -> np.ndarray:
        """Long-link in-degrees of live peers (ring order)."""
        return self.state.in_deg[self.ring.slots_array(live_only=True)].astype(np.int64)

    def in_cap_array(self) -> np.ndarray:
        """``rho_max_in`` of live peers (ring order)."""
        return self.state.cap_in[self.ring.slots_array(live_only=True)].astype(np.int64)

    def out_degree_array(self) -> np.ndarray:
        """Long-link out-degrees of live peers (ring order)."""
        return self.state.out_count[self.ring.slots_array(live_only=True)].astype(np.int64)

    def out_cap_array(self) -> np.ndarray:
        """``rho_max_out`` of live peers (ring order)."""
        return self.state.cap_out[self.ring.slots_array(live_only=True)].astype(np.int64)

    @property
    def size(self) -> int:
        """Number of currently live peers (the :class:`Substrate` surface)."""
        return self.ring.live_count

    def __len__(self) -> int:
        return self.ring.live_count

    def __repr__(self) -> str:
        return (
            f"OscarOverlay(live={self.ring.live_count}, total={len(self.ring)}, "
            f"config={self.config!r})"
        )
