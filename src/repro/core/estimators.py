"""Building partition tables: exact (oracle) and sampled estimators.

The paper's nodes cannot see the population; they *estimate* each median
"by uniformly sampling each subpopulation B_i" with restricted random
walkers. This module provides the three fidelity levels declared in
:class:`~repro.config.SamplingMode`:

* :func:`oracle_partitions` — exact recursive medians straight from the
  ring's order statistics (`O(k log N)`); ground truth for tests and the
  upper-bound ablation;
* :func:`sampled_partitions` with ``UNIFORM`` — i.i.d. uniform samples
  per subpopulation, the idealized walk outcome (the experiments'
  default, matching the paper's observation that very low sample sizes
  already work well);
* :func:`sampled_partitions` with ``WALK`` — true restricted
  Metropolis–Hastings walks over the current overlay links.

All estimators return a :class:`~repro.core.partitions.PartitionTable`
whose monotonicity invariants are enforced on construction, so a buggy
estimate fails loudly rather than silently degrading routing.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..config import OscarConfig, SamplingMode
from ..errors import SamplingError
from ..protocol.decisions import border_is_terminal
from ..protocol.estimation import PartitionEstimator
from ..ring import Ring
from ..sampling import RestrictedWalker, sample_arc_uniform
from ..types import NodeId
from .partitions import PartitionTable

__all__ = [
    "oracle_partitions",
    "sampled_partitions",
    "estimate_partitions",
    "border_is_terminal",  # canonical home: repro.protocol.decisions
]

NeighborFn = Callable[[NodeId], Sequence[NodeId]]


def oracle_partitions(ring: Ring, node_id: NodeId, k: int) -> PartitionTable:
    """Exact recursive-median partitions for ``node_id``.

    ``k`` caps the partition count; fewer result when the population runs
    out (each level must keep at least one peer on the near side).
    """
    origin = ring.position(node_id)
    live = ring.live_count
    population = live - 1 if ring.is_alive(node_id) else live
    if population < 1:
        raise SamplingError(f"node {node_id} sees an empty population")
    far_end = ring.position(ring.predecessor(node_id, live_only=True))

    medians: list[float] = []
    remaining = population
    for __ in range(k - 1):
        half = remaining // 2
        if half < 1:
            break
        # The peer at clockwise rank `half` splits the remaining near-side
        # population; everything beyond it joins the current partition.
        medians.append(ring.position_at_cw_rank(origin, half, live_only=True))
        remaining = half
    return PartitionTable(origin=origin, far_end=far_end, medians=tuple(medians))


def sampled_partitions(
    ring: Ring,
    node_id: NodeId,
    k: int,
    config: OscarConfig,
    rng: np.random.Generator,
    neighbor_fn: NeighborFn | None = None,
) -> PartitionTable:
    """Estimate partitions from samples (``UNIFORM`` or ``WALK`` mode).

    Drives the sans-I/O :class:`~repro.protocol.estimation.PartitionEstimator`
    — the same level machine the message-passing runtime runs — feeding
    it this simulator's samplers: per level ``i`` the machine requests
    the remaining arc ``(origin, m_{i-1}]``, receives samples, and takes
    the clockwise sample median as the border ``m_i``; levels stop early
    when a subpopulation yields no non-self samples, and estimated
    borders are clamped to preserve the table's monotonicity invariant
    under sampling noise.
    """
    origin = ring.position(node_id)
    if ring.live_count - (1 if ring.is_alive(node_id) else 0) < 1:
        raise SamplingError(f"node {node_id} sees an empty population")
    far_end = ring.position(ring.predecessor(node_id, live_only=True))
    if far_end == origin:
        # Sole live peer aside from dead entries: single-partition table.
        return PartitionTable(origin=origin, far_end=far_end)

    walker_start: NodeId | None = None
    if config.sampling_mode is SamplingMode.WALK:
        if neighbor_fn is None:
            raise SamplingError("WALK sampling requires a neighbor_fn")
        walker_start = ring.successor(node_id, live_only=True)

    estimator = PartitionEstimator(origin, far_end, k)
    while (arc := estimator.pending_arc()) is not None:
        estimator.add_samples(
            _sample_arc(ring, config, rng, node_id, arc[0], arc[1], neighbor_fn, walker_start)
        )
    return estimator.table()


def estimate_partitions(
    ring: Ring,
    node_id: NodeId,
    config: OscarConfig,
    rng: np.random.Generator,
    neighbor_fn: NeighborFn | None = None,
) -> PartitionTable:
    """Dispatch on ``config.sampling_mode`` (the public entry point)."""
    k = config.partitions_for(max(1, ring.live_count))
    if config.sampling_mode is SamplingMode.ORACLE:
        return oracle_partitions(ring, node_id, k)
    return sampled_partitions(ring, node_id, k, config, rng, neighbor_fn)


def _sample_arc(
    ring: Ring,
    config: OscarConfig,
    rng: np.random.Generator,
    node_id: NodeId,
    origin: float,
    arc_end: float,
    neighbor_fn: NeighborFn | None,
    walker_start: NodeId | None,
) -> np.ndarray:
    """Positions of sampled peers in ``(origin, arc_end]``, self excluded."""
    if config.sampling_mode is SamplingMode.UNIFORM:
        ids = sample_arc_uniform(ring, rng, origin, arc_end, config.sample_size)
    else:
        assert neighbor_fn is not None and walker_start is not None
        walker = RestrictedWalker(ring, neighbor_fn, start=origin, end=arc_end)
        start = walker_start
        if not walker._in_arc(start):
            # The node's direct successor can fall outside a shrunken arc
            # only if the arc is empty of live peers; bail out.
            return np.empty(0, dtype=float)
        ids = walker.walk(rng, start, config.sample_size, hops_per_sample=config.walk_hops)
    ids = ids[ids != node_id]
    if ids.size == 0:
        return np.empty(0, dtype=float)
    return np.array([ring.position(int(i)) for i in ids], dtype=float)
