"""Struct-of-arrays substrate state shared by the ring and the overlays.

This module is the data layout underneath the whole system: one
:class:`SubstrateState` holds, in flat numpy arrays indexed by *slot*,
everything the ring and the three substrates (Oscar, Mercury, Chord)
know about a peer — its id, unit-circle position, exact ``uint64`` key,
liveness flag, in/out capacities and degrees, its padded long-link
table, its partition-table view of the key space, and its cumulative
sampling spend. ``Ring``, ``OscarNode``, ``MercuryNode`` and the
overlay ``nodes`` / ``fingers`` mappings are thin views over these
arrays: reading ``node.in_degree`` reads one array cell, and the batch
engines read whole columns without crossing the Python object boundary
per peer.

Design notes
------------

* **Slots, not ids.** A peer's *slot* is its physical row in the
  arrays. Ids are logical and dense-ish (assigned by the overlays);
  ``_slot_of`` maps id -> slot in O(1). Slots of removed peers are
  recycled through a free list.
* **The free list is sorted.** ``free_many`` returns slots to the pool
  and ``alloc_many`` always hands out the *smallest* free slots first,
  then fresh slots off the high-water mark. This makes slot layout a
  pure function of the operation history — fixed-seed runs produce the
  same physical layout regardless of dict iteration order or the
  platform's hash seed, which is what lets resume-from-fixture tests
  compare raw arrays.
* **Padded tables.** The long-link table is an ``int32`` matrix with
  ``-1`` padding; row ``s`` holds ``out_count[s]`` targets in columns
  ``0..out_count[s])`` and ``-1`` everywhere after (the *padding
  invariant* — vectorized kernels rely on it to read live links with a
  single mask). The medians table is its float twin for partition
  borders, gated by ``n_medians`` (``-1`` means "no table yet").
* **Views are cheap and transient.** ``LinkView`` / node views carry
  only ``(state, slot)``; equality and iteration materialize Python
  ints so existing call sites (``set(node.out_links)``,
  ``links == [3, 7]``) keep working unchanged.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from ..types import NodeId

__all__ = ["SubstrateState", "LinkView", "NodeTable", "FingerTable"]

_MIN_CAPACITY = 8


class SubstrateState:
    """Flat per-peer arrays indexed by slot, with free-list recycling."""

    __slots__ = (
        "node_id",
        "pos",
        "key",
        "alive",
        "cap_in",
        "cap_out",
        "in_deg",
        "out_count",
        "out_links",
        "samples_spent",
        "part_origin",
        "part_far_end",
        "n_medians",
        "medians",
        "histograms",
        "_slot_of",
        "_free",
        "_top",
    )

    def __init__(self, capacity: int = 0) -> None:
        capacity = max(int(capacity), 0)
        self.node_id = np.full(capacity, -1, dtype=np.int64)
        self.pos = np.zeros(capacity, dtype=np.float64)
        self.key = np.zeros(capacity, dtype=np.uint64)
        self.alive = np.zeros(capacity, dtype=bool)
        self.cap_in = np.zeros(capacity, dtype=np.int32)
        self.cap_out = np.zeros(capacity, dtype=np.int32)
        self.in_deg = np.zeros(capacity, dtype=np.int32)
        self.out_count = np.zeros(capacity, dtype=np.int32)
        self.out_links = np.full((capacity, 0), -1, dtype=np.int32)
        self.samples_spent = np.zeros(capacity, dtype=np.int64)
        self.part_origin = np.zeros(capacity, dtype=np.float64)
        self.part_far_end = np.zeros(capacity, dtype=np.float64)
        self.n_medians = np.full(capacity, -1, dtype=np.int32)
        self.medians = np.zeros((capacity, 0), dtype=np.float64)
        # Object side-car for Mercury's density histograms (rare, small).
        self.histograms: dict[int, Any] = {}
        self._slot_of = np.full(capacity, -1, dtype=np.int64)
        self._free: list[int] = []
        self._top = 0

    # ------------------------------------------------------------------
    # capacity management
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Number of physical slots currently allocated."""
        return int(self.node_id.size)

    @property
    def n_slots(self) -> int:
        """Number of slots in use (allocated and not freed)."""
        return self._top - len(self._free)

    @property
    def link_width(self) -> int:
        return int(self.out_links.shape[1])

    @property
    def median_width(self) -> int:
        return int(self.medians.shape[1])

    def _grow_rows(self, needed: int) -> None:
        old = self.capacity
        if needed <= old:
            return
        new = max(needed, old * 2, _MIN_CAPACITY)
        self.node_id = _grow1(self.node_id, new, -1)
        self.pos = _grow1(self.pos, new, 0.0)
        self.key = _grow1(self.key, new, 0)
        self.alive = _grow1(self.alive, new, False)
        self.cap_in = _grow1(self.cap_in, new, 0)
        self.cap_out = _grow1(self.cap_out, new, 0)
        self.in_deg = _grow1(self.in_deg, new, 0)
        self.out_count = _grow1(self.out_count, new, 0)
        self.samples_spent = _grow1(self.samples_spent, new, 0)
        self.part_origin = _grow1(self.part_origin, new, 0.0)
        self.part_far_end = _grow1(self.part_far_end, new, 0.0)
        self.n_medians = _grow1(self.n_medians, new, -1)
        self.out_links = _grow2(self.out_links, new, self.link_width, -1)
        self.medians = _grow2(self.medians, new, self.median_width, 0.0)

    def ensure_link_width(self, width: int) -> None:
        """Grow the padded link table to at least ``width`` columns."""
        if width > self.link_width:
            new_w = max(width, self.link_width * 2, 4)
            self.out_links = _grow2(self.out_links, self.capacity, new_w, -1)

    def ensure_median_width(self, width: int) -> None:
        """Grow the padded medians table to at least ``width`` columns."""
        if width > self.median_width:
            new_w = max(width, self.median_width * 2, 4)
            self.medians = _grow2(self.medians, self.capacity, new_w, 0.0)

    def _ensure_ids(self, max_id: int) -> None:
        if max_id >= self._slot_of.size:
            new = max(max_id + 1, self._slot_of.size * 2, _MIN_CAPACITY)
            self._slot_of = _grow1(self._slot_of, new, -1)

    # ------------------------------------------------------------------
    # id -> slot lookup
    # ------------------------------------------------------------------

    def slot_of(self, node_id: object) -> int:
        """Slot of ``node_id``, or ``-1`` when unknown (never raises)."""
        try:
            i = operator.index(node_id)  # type: ignore[arg-type]
        except TypeError:
            return -1
        if i < 0 or i >= self._slot_of.size:
            return -1
        return int(self._slot_of[i])

    def slots_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Vectorized id -> slot lookup; unknown ids map to ``-1``."""
        ids = np.asarray(node_ids, dtype=np.int64)
        if ids.size == 0:
            return np.empty(0, dtype=np.int64)
        table = self._slot_of
        safe = np.clip(ids, 0, table.size - 1) if table.size else np.zeros_like(ids)
        slots = table[safe] if table.size else np.full(ids.shape, -1, np.int64)
        return np.where((ids >= 0) & (ids < table.size), slots, -1)

    # ------------------------------------------------------------------
    # slot allocation / recycling
    # ------------------------------------------------------------------

    def alloc_many(
        self, node_ids: np.ndarray, positions: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Allocate one slot per peer and write id/position/key/alive.

        Recycled slots are handed out smallest-first (the free list is
        kept sorted), then fresh slots continue from the high-water
        mark, so physical layout is deterministic for a fixed operation
        history. All other per-slot fields start cleared (capacities 0,
        degree 0, no links, no partition table).
        """
        ids = np.asarray(node_ids, dtype=np.int64)
        k = int(ids.size)
        if k == 0:
            return np.empty(0, dtype=np.int64)
        reuse = min(k, len(self._free))
        slots = np.empty(k, dtype=np.int64)
        if reuse:
            slots[:reuse] = self._free[:reuse]
            del self._free[:reuse]
        fresh = k - reuse
        if fresh:
            self._grow_rows(self._top + fresh)
            slots[reuse:] = np.arange(self._top, self._top + fresh, dtype=np.int64)
            self._top += fresh
        self.node_id[slots] = ids
        self.pos[slots] = np.asarray(positions, dtype=np.float64)
        self.key[slots] = np.asarray(keys, dtype=np.uint64)
        self.alive[slots] = True
        self._ensure_ids(int(ids.max()))
        self._slot_of[ids] = slots
        return slots

    def alloc_one(self, node_id: int, position: float, key: int) -> int:
        return int(
            self.alloc_many(
                np.array([node_id], dtype=np.int64),
                np.array([position], dtype=np.float64),
                np.array([key], dtype=np.uint64),
            )[0]
        )

    def free_many(self, slots: np.ndarray) -> None:
        """Return slots to the pool and clear every per-slot field.

        The free list is re-sorted so subsequent allocations pop the
        smallest slot first (deterministic recycling).
        """
        arr = np.asarray(slots, dtype=np.int64)
        if arr.size == 0:
            return
        ids = self.node_id[arr]
        self._slot_of[ids[ids >= 0]] = -1
        self.node_id[arr] = -1
        self.pos[arr] = 0.0
        self.key[arr] = 0
        self.alive[arr] = False
        self.cap_in[arr] = 0
        self.cap_out[arr] = 0
        self.in_deg[arr] = 0
        self.out_count[arr] = 0
        if self.link_width:
            self.out_links[arr] = -1
        self.samples_spent[arr] = 0
        self.part_origin[arr] = 0.0
        self.part_far_end[arr] = 0.0
        self.n_medians[arr] = -1
        if self.median_width:
            self.medians[arr] = 0.0
        if self.histograms:
            for s in arr:
                self.histograms.pop(int(s), None)
        self._free.extend(int(s) for s in arr)
        self._free.sort()

    # ------------------------------------------------------------------
    # link rows
    # ------------------------------------------------------------------

    def clear_links(self, slots: np.ndarray) -> None:
        """Wipe the outgoing-link rows of ``slots`` back to padding."""
        arr = np.asarray(slots, dtype=np.int64)
        if arr.size == 0:
            return
        if self.link_width:
            self.out_links[arr] = -1
        self.out_count[arr] = 0

    def set_links(self, slot: int, targets: Iterable[int]) -> None:
        """Replace the link row of one slot with ``targets`` (in order)."""
        ids = [int(t) for t in targets]
        if self.link_width:
            self.out_links[slot] = -1
        if ids:
            self.ensure_link_width(len(ids))
            self.out_links[slot, : len(ids)] = ids
        self.out_count[slot] = len(ids)


def _grow1(arr: np.ndarray, size: int, fill: object) -> np.ndarray:
    out = np.full(size, fill, dtype=arr.dtype)
    out[: arr.size] = arr
    return out


def _grow2(arr: np.ndarray, rows: int, cols: int, fill: object) -> np.ndarray:
    out = np.full((rows, cols), fill, dtype=arr.dtype)
    out[: arr.shape[0], : arr.shape[1]] = arr
    return out


class LinkView:
    """List-like view of one peer's outgoing long links.

    Supports the subset of the ``list`` protocol the construction and
    churn code uses: ``len``, iteration (yielding Python ints),
    indexing and slicing, ``in``, ``append`` / ``extend`` / ``clear``,
    equality against lists/tuples/other views, and ``np.asarray``.
    """

    __slots__ = ("_state", "_slot")

    def __init__(self, state: SubstrateState, slot: int) -> None:
        self._state = state
        self._slot = slot

    def __len__(self) -> int:
        return int(self._state.out_count[self._slot])

    def __iter__(self) -> Iterator[int]:
        row = self._state.out_links[self._slot]
        for j in range(int(self._state.out_count[self._slot])):
            yield int(row[j])

    def __getitem__(self, index: int | slice) -> int | list[int]:
        n = len(self)
        if isinstance(index, slice):
            return [int(v) for v in self._state.out_links[self._slot, :n][index]]
        i = operator.index(index)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("link index out of range")
        return int(self._state.out_links[self._slot, i])

    def __contains__(self, value: object) -> bool:
        try:
            v = operator.index(value)  # type: ignore[arg-type]
        except TypeError:
            return False
        n = len(self)
        if n == 0:
            return False
        return bool((self._state.out_links[self._slot, :n] == v).any())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LinkView):
            return list(self) == list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __array__(
        self, dtype: np.dtype | type | None = None, copy: bool | None = None
    ) -> np.ndarray:
        n = len(self)
        out = np.array(self._state.out_links[self._slot, :n], dtype=dtype or np.int64)
        return out

    def append(self, value: int) -> None:
        state, slot = self._state, self._slot
        n = int(state.out_count[slot])
        state.ensure_link_width(n + 1)
        state.out_links[slot, n] = int(value)
        state.out_count[slot] = n + 1

    def extend(self, values: Iterable[int]) -> None:
        for value in values:
            self.append(value)

    def clear(self) -> None:
        state, slot = self._state, self._slot
        n = int(state.out_count[slot])
        if n:
            state.out_links[slot, :n] = -1
        state.out_count[slot] = 0

    def __repr__(self) -> str:
        return repr(list(self))


class NodeTable:
    """Mapping-like view ``node_id -> node view`` over a substrate state.

    Iteration yields node ids in ascending order (allocation order for
    the dense ids the overlays assign, matching the old dict's
    insertion order). ``pop`` is a deliberate no-op: peers leave the
    table when their ring slot is freed (``Ring.remove_many``), not
    before — the churn engine drops node state *then* compacts the
    ring, and both must observe the peer until the slot goes away.
    """

    __slots__ = ("_state", "_factory")

    def __init__(
        self, state: SubstrateState, factory: Callable[[SubstrateState, int], Any]
    ) -> None:
        self._state = state
        self._factory = factory

    def _ids(self) -> np.ndarray:
        used = self._state.node_id[: self._state._top]
        return np.sort(used[used >= 0])

    def __getitem__(self, node_id: NodeId) -> Any:
        slot = self._state.slot_of(node_id)
        if slot < 0:
            raise KeyError(node_id)
        return self._factory(self._state, slot)

    def get(self, node_id: NodeId, default: Any = None) -> Any:
        slot = self._state.slot_of(node_id)
        if slot < 0:
            return default
        return self._factory(self._state, slot)

    def __contains__(self, node_id: object) -> bool:
        return self._state.slot_of(node_id) >= 0

    def __iter__(self) -> Iterator[int]:
        return iter(int(i) for i in self._ids())

    def __len__(self) -> int:
        return self._state.n_slots

    def keys(self) -> Iterator[int]:
        return iter(self)

    def values(self) -> Iterator[Any]:
        for node_id in self:
            yield self[node_id]

    def items(self) -> Iterator[tuple[int, Any]]:
        for node_id in self:
            yield node_id, self[node_id]

    def pop(self, node_id: NodeId, default: Any = None) -> Any:
        """Non-destructive: views die with their ring slot, not here."""
        return self.get(node_id, default)

    def __repr__(self) -> str:
        return f"NodeTable(n={len(self)})"


class FingerTable:
    """Dict-like ``node_id -> finger list`` view for the Chord baseline.

    Fingers are stored in the same padded link table the other
    substrates use for long links; assignment replaces the row.
    """

    __slots__ = ("_state",)

    def __init__(self, state: SubstrateState) -> None:
        self._state = state

    def _ids(self) -> np.ndarray:
        used = self._state.node_id[: self._state._top]
        return np.sort(used[used >= 0])

    def __getitem__(self, node_id: NodeId) -> LinkView:
        slot = self._state.slot_of(node_id)
        if slot < 0:
            raise KeyError(node_id)
        return LinkView(self._state, slot)

    def __setitem__(self, node_id: NodeId, targets: Iterable[int]) -> None:
        slot = self._state.slot_of(node_id)
        if slot < 0:
            raise KeyError(node_id)
        self._state.set_links(slot, targets)

    def get(self, node_id: NodeId, default: Any = None) -> Any:
        slot = self._state.slot_of(node_id)
        if slot < 0:
            return default
        return LinkView(self._state, slot)

    def __contains__(self, node_id: object) -> bool:
        return self._state.slot_of(node_id) >= 0

    def __iter__(self) -> Iterator[int]:
        return iter(int(i) for i in self._ids())

    def __len__(self) -> int:
        return self._state.n_slots

    def keys(self) -> Iterator[int]:
        return iter(self)

    def values(self) -> Iterator[LinkView]:
        for node_id in self:
            yield self[node_id]

    def items(self) -> Iterator[tuple[int, LinkView]]:
        for node_id in self:
            yield node_id, self[node_id]

    def pop(self, node_id: NodeId, default: Any = None) -> Any:
        """Non-destructive: finger rows die with their ring slot."""
        return self.get(node_id, default)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FingerTable):
            return {i: list(v) for i, v in self.items()} == {
                i: list(v) for i, v in other.items()
            }
        if isinstance(other, dict):
            return {i: list(v) for i, v in self.items()} == {
                int(i): [int(t) for t in v] for i, v in other.items()
            }
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return f"FingerTable(n={len(self)})"
