"""Batched query evaluation over numpy arrays — the measurement hot path.

Every figure of the paper boils down to "route N random queries, average
the cost". The scalar path (:meth:`Substrate.route
<repro.core.substrate.Substrate.route>`) walks one query at a time
through Python-level neighbor scans; at paper scale that is tens of
millions of interpreter iterations per sweep. This module evaluates a
whole query batch in lock-step instead: target-key sampling, responsible
-peer resolution, per-hop next-hop selection and hop/success tallies are
all vectorized, with a cached topology snapshot (successor pointers +
padded neighbor matrix) that is rebuilt only when the substrate's
``topology_version`` changes — i.e. on join/leave/churn/rewire.

The batched walk replays the greedy router's rules — the same
closest-preceding-node rule, the same final-interval delivery check, the
same first-wins tie-breaking — as **exact fixed-point keyspace
kernels** (:mod:`repro.ring.keyspace`): target keys are converted to
``uint64`` once per batch and every per-hop distance is a wrapping
integer subtraction — cheaper than the float ``%`` it replaced, and
immune to the rounding disagreements float subtraction allowed. The
scalar router decides the identical questions with comparison-exact
predicates at full float resolution; the two agree bit-for-bit whenever
peer positions occupy distinct ``2**-64`` key cells, which real
workloads always do (a million uniform draws share a cell with
probability below ``10**-7``; sub-resolution fixtures are an
adversarial-test-only construct). Batched hop counts and
:class:`~repro.routing.RouteStats` are therefore bit-identical to
routing the same queries one at a time — a property the test suite
asserts for all three substrates and the golden fixture pins across
refactors.

Typical use::

    from repro import OscarConfig, OscarOverlay
    from repro.degree import ConstantDegrees
    from repro.engine import BatchQueryEngine
    from repro.rng import split
    from repro.workloads import GnutellaLikeDistribution

    overlay = OscarOverlay(OscarConfig(), seed=42)
    overlay.grow(1000, GnutellaLikeDistribution(), ConstantDegrees(8))
    overlay.rewire()

    engine = BatchQueryEngine(overlay)
    stats = engine.measure(split(42, "demo"), n_queries=5000)
    print(stats.mean_cost, stats.success_rate)   # e.g. 4.87 1.0

Under churn (``faulty=True``) the probing/backtracking router is
inherently sequential (its depth-first search carries per-query mutable
state), so :meth:`BatchQueryEngine.measure` falls back to the scalar
fault-aware router for those batches while keeping the one engine API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..config import RoutingConfig
from ..errors import RoutingError
from ..ring import keyspace
from ..routing import RouteStats, summarize_routes
from ..routing.result import _percentile  # shared so folds stay bit-identical
from ..workloads import QueryWorkload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports routing)
    from ..core.substrate import Substrate

__all__ = ["BatchQueryEngine", "BatchRouteResult", "TopologySnapshot"]


@dataclass(frozen=True)
class TopologySnapshot:
    """Array view of one substrate topology at a fixed version.

    Node identity is translated once into dense row indices over *all*
    peers ever joined (live and dead — greedy routing follows links
    without liveness checks, exactly like the scalar router), so the
    per-hop inner loop is pure array gathering.

    Attributes:
        version: The substrate's ``topology_version`` this snapshot was
            built at; the engine compares it to decide staleness.
        all_pos: Position per row, every peer, sorted by position.
        all_keys: Exact ``uint64`` keyspace twin of ``all_pos`` — what
            the per-hop integer geometry computes on.
        all_ids: Node id per row, aligned with ``all_pos``.
        live_pos: Positions of live peers only (sorted) — the
            responsible-peer (``successor_of_key``) lookup table.
        live_rows: Row index (into ``all_pos``) of each live peer,
            aligned with ``live_pos``.
        row_of: ``node id -> row`` translation array (-1 for unknown).
        succ_row: Maintained ring-successor pointer per row (-1 when the
            peer has no pointer, e.g. it is dead and was repaired away).
        nbr_rows: Padded neighbor matrix: row ``i`` holds the rows of
            ``neighbors_of(all_ids[i])`` in provider order, padded with
            -1. Provider order is what makes batched tie-breaking match
            the scalar closest-preceding scan.
    """

    version: object
    all_pos: np.ndarray
    all_keys: np.ndarray
    all_ids: np.ndarray
    live_pos: np.ndarray
    live_rows: np.ndarray
    row_of: np.ndarray
    succ_row: np.ndarray
    nbr_rows: np.ndarray

    @classmethod
    def capture(cls, substrate: "Substrate") -> "TopologySnapshot":
        """Materialize the current topology of ``substrate`` as arrays."""
        ring = substrate.ring
        all_pos = ring.positions_array(live_only=False)
        all_keys = ring.keys_array(live_only=False)
        all_ids = ring.ids_array(live_only=False)
        n = int(all_ids.size)

        max_id = int(all_ids.max()) if n else -1
        row_of = np.full(max_id + 2, -1, dtype=np.int64)
        row_of[all_ids] = np.arange(n, dtype=np.int64)

        live_ids = ring.ids_array(live_only=True)
        live_pos = ring.positions_array(live_only=True)
        live_rows = row_of[live_ids]

        succ_row = cls._pointer_rows(substrate.pointers.successor, row_of, max_id, n)

        # Rows for every peer, dead ones included: the greedy walk follows
        # links without liveness checks (so can land on an unrepaired dead
        # peer), and the scalar router still scans that peer's neighbors.
        state = getattr(substrate, "state", None)
        if state is not None and getattr(ring, "state", None) is state:
            # Struct-of-arrays fast path: succ/pred columns from the
            # pointer maps plus the state's padded link matrix, compacted
            # into the exact rows the scalar per-peer scan would build.
            pred_row = cls._pointer_rows(
                substrate.pointers.predecessor, row_of, max_id, n
            )
            nbr_rows = cls._neighbor_rows_from_state(
                state, ring, row_of, succ_row, pred_row, n
            )
        else:
            neighbor_lists: list[list[int]] = [[] for __ in range(n)]
            width = 1
            for row, node_id in enumerate(all_ids):
                nbrs = [
                    int(row_of[nbr])
                    for nbr in substrate.neighbors_of(int(node_id))  # repro: allow[SOA001] scalar fallback
                ]
                neighbor_lists[row] = nbrs
                width = max(width, len(nbrs))
            nbr_rows = np.full((n, width), -1, dtype=np.int64)
            for row, nbrs in enumerate(neighbor_lists):
                if nbrs:
                    nbr_rows[row, : len(nbrs)] = nbrs

        return cls(
            version=substrate.topology_version,
            all_pos=all_pos,
            all_keys=all_keys,
            all_ids=all_ids,
            live_pos=live_pos,
            live_rows=live_rows,
            row_of=row_of,
            succ_row=succ_row,
            nbr_rows=nbr_rows,
        )

    @staticmethod
    def _pointer_rows(
        pointer_map: dict, row_of: np.ndarray, max_id: int, n: int
    ) -> np.ndarray:
        """Per-row pointer-target rows from one maintained pointer map
        (-1 where the peer has no pointer)."""
        rows = np.full(n, -1, dtype=np.int64)
        if not pointer_map:
            return rows
        ks = np.fromiter(pointer_map.keys(), dtype=np.int64, count=len(pointer_map))
        vs = np.fromiter(pointer_map.values(), dtype=np.int64, count=len(pointer_map))
        ok = ks <= max_id
        krows = row_of[ks[ok]]
        keep = krows >= 0
        rows[krows[keep]] = row_of[vs[ok][keep]]
        return rows

    @staticmethod
    def _neighbor_rows_from_state(
        state,
        ring,
        row_of: np.ndarray,
        succ_row: np.ndarray,
        pred_row: np.ndarray,
        n: int,
    ) -> np.ndarray:
        """Padded neighbor matrix straight from the substrate state.

        Emits exactly what the scalar ``neighbors_of`` scan appends per
        peer: ring successor (unless absent or self), ring predecessor
        (unless absent, self, or equal to the successor), then every
        outgoing link slot in table order — dead targets *kept* (their
        rows resolve normally) and targets of hard-removed ids kept as
        -1, both occupying their column just as the scalar translation
        does. Only truly absent entries (no pointer, past ``out_count``)
        are compacted away; they use a transient -2 sentinel so they
        cannot be confused with the -1 unknown-translation entries.
        """
        rows_idx = np.arange(n, dtype=np.int64)
        succ_col = np.where((succ_row >= 0) & (succ_row != rows_idx), succ_row, -2)
        pred_col = np.where(
            (pred_row >= 0) & (pred_row != rows_idx) & (pred_row != succ_row),
            pred_row,
            -2,
        )
        slots = ring.slots_array(live_only=False)
        width = state.link_width
        if width:
            links = state.out_links[slots].astype(np.int64)
            have = np.arange(width) < state.out_count[slots][:, None]
            safe = np.clip(links, 0, row_of.size - 1)
            trans = np.where((links >= 0) & (links < row_of.size), row_of[safe], -1)
            link_cols = np.where(have, trans, -2)
            full = np.concatenate(
                [succ_col[:, None], pred_col[:, None], link_cols], axis=1
            )
        else:
            full = np.stack([succ_col, pred_col], axis=1)
        # Stable left-compaction of the absent entries only.
        order = np.argsort(full == -2, axis=1, kind="stable")
        matrix = np.take_along_axis(full, order, axis=1)
        keep = max(1, int((full != -2).sum(axis=1).max(initial=0)))
        return np.where(matrix == -2, -1, matrix)[:, :keep]

    def responsible_rows(self, target_keys: np.ndarray) -> np.ndarray:
        """Row of the live peer responsible for each key (vectorized
        ``ring.successor_of_key``: first live peer at-or-after the key,
        wrapping)."""
        if self.live_pos.size == 0:
            raise RoutingError("topology snapshot has no live peers")
        idx = np.searchsorted(self.live_pos, target_keys, side="left")
        return self.live_rows[idx % self.live_rows.size]


@dataclass(frozen=True)
class BatchRouteResult:
    """Per-query outcome arrays of one fault-free batch.

    Attributes:
        sources: Originating node ids.
        target_keys: Looked-up keys.
        responsible: Ground-truth responsible node id per query.
        hops: Forward hops per query (the fault-free search cost).
        success: Delivery flag per query (always true — the fault-free
            greedy walk either delivers or raises, as the scalar router
            does).
    """

    sources: np.ndarray
    target_keys: np.ndarray
    responsible: np.ndarray
    hops: np.ndarray
    success: np.ndarray

    def stats(self) -> RouteStats:
        """Fold into :class:`~repro.routing.RouteStats`, bit-identical to
        :func:`~repro.routing.summarize_routes` over the equivalent
        scalar :class:`~repro.routing.RouteResult` batch."""
        n = int(self.hops.size)
        if n == 0:
            return RouteStats(0, 0, 0.0, 0.0, 0.0, 0, 0.0)
        costs = np.sort(self.hops)
        mean = int(costs.sum()) / n  # exact int sum -> correctly rounded float
        return RouteStats(
            n_routes=n,
            n_success=int(self.success.sum()),
            mean_cost=mean,
            mean_hops=mean,
            mean_wasted=0.0,
            max_cost=int(costs[-1]),
            p95_cost=_percentile(costs.tolist(), 0.95),
        )


class BatchQueryEngine:
    """Array-oriented route evaluation for any :class:`Substrate`.

    One engine instance wraps one substrate and owns a lazily built
    :class:`TopologySnapshot`. The snapshot doubles as a successor-lookup
    cache: responsible-peer resolution, ring-successor pointers and
    neighbor sets are all precomputed arrays, revalidated against the
    substrate's ``topology_version`` before every batch and rebuilt when
    membership or links changed.

    Args:
        substrate: Any overlay satisfying the
            :class:`~repro.core.substrate.Substrate` protocol.
        routing: Router cost model; defaults to the substrate's own
            ``routing`` config so engine-measured budgets match scalar
            routing.
    """

    def __init__(self, substrate: "Substrate", routing: RoutingConfig | None = None) -> None:
        self.substrate = substrate
        self.routing = routing or getattr(substrate, "routing", None) or RoutingConfig()
        self._route_cache: TopologySnapshot | None = None

    # ------------------------------------------------------------------
    # snapshot cache
    # ------------------------------------------------------------------

    @property
    def cached_snapshot(self) -> TopologySnapshot | None:
        """The currently held snapshot (``None`` before first use) —
        exposed for cache-behaviour tests."""
        return self._route_cache  # repro: allow[CACHE001] exposure-only read for cache tests

    def invalidate(self) -> None:
        """Drop the cached snapshot unconditionally (next batch rebuilds)."""
        self._route_cache = None

    def snapshot(self) -> TopologySnapshot:
        """Return a snapshot of the substrate's *current* topology,
        reusing the cache when ``topology_version`` is unchanged."""
        version = self.substrate.topology_version
        if self._route_cache is None or self._route_cache.version != version:
            self._route_cache = TopologySnapshot.capture(self.substrate)
        return self._route_cache

    # ------------------------------------------------------------------
    # batched routing
    # ------------------------------------------------------------------

    def route_batch(self, sources: np.ndarray, target_keys: np.ndarray) -> BatchRouteResult:
        """Route every ``(source, key)`` pair through the fault-free
        greedy walk, all queries advancing one hop per iteration.

        Per iteration, each still-active query at peer ``v``: if its key
        falls in ``(v, successor(v)]`` it takes the delivery hop to the
        ring successor; otherwise it forwards to the neighbor with
        maximal clockwise progress not passing the key (first-listed
        wins ties; the ring successor is the standing fallback). These
        are exactly the scalar router's rules evaluated as array ops, so
        hop counts match one-at-a-time routing exactly.

        Raises:
            RoutingError: A query exceeded the message budget, reached a
                peer with no ring successor pointer, or found no
                progressing neighbor — the same conditions that abort
                the scalar fault-free router.
        """
        snap = self.snapshot()
        sources = np.asarray(sources, dtype=np.int64)
        target_keys = np.asarray(target_keys, dtype=float)
        if sources.shape != target_keys.shape:
            raise ValueError("sources and target_keys must be aligned 1-d arrays")

        n = int(sources.size)
        targets = keyspace.from_units(target_keys)  # one conversion per batch
        responsible = snap.responsible_rows(target_keys)
        current = snap.row_of[sources]
        if np.any(current < 0):
            raise RoutingError("batch contains sources unknown to the topology")
        hops = np.zeros(n, dtype=np.int64)
        budget = self.routing.budget

        active = current != responsible
        while np.any(active):
            rows = np.nonzero(active)[0]
            if int(hops[rows].max(initial=0)) >= budget:
                raise RoutingError(
                    f"fault-free batch route exceeded budget {budget}"
                )
            cur = current[rows]
            tgt = targets[rows]
            cur_key = snap.all_keys[cur]
            succ = snap.succ_row[cur]
            if np.any(succ < 0):
                bad = int(snap.all_ids[cur[succ < 0][0]])
                raise RoutingError(f"node {bad} has no ring successor pointer")
            succ_key = snap.all_keys[succ]

            deliver = keyspace.in_cw_intervals(tgt, cur_key, succ_key)
            nxt = succ.copy()

            forward = ~deliver
            if np.any(forward):
                f_cur = cur[forward]
                f_key = cur_key[forward]
                span = tgt[forward] - f_key  # wrapping uint64 cw distances
                succ_progress = succ_key[forward] - f_key

                cand = snap.nbr_rows[f_cur]  # (k, width)
                valid = cand >= 0
                cand_key = snap.all_keys[np.where(valid, cand, 0)]
                progress = cand_key - f_key[:, None]
                # Candidates past the key (or padding) never win: zero
                # progress never beats the >= 1 ring-successor fallback
                # (zero-progress real candidates are the peer itself,
                # which the scalar scan skips for the same reason).
                progress = np.where(valid & (progress <= span[:, None]), progress, np.uint64(0))

                best_col = progress.argmax(axis=1)  # first max == scalar first-wins
                take = np.arange(best_col.size)
                best_progress = progress[take, best_col]
                best = cand[take, best_col]
                improved = best_progress > succ_progress
                nxt[forward] = np.where(improved, best, succ[forward])

            if np.any(nxt == cur):
                stuck = int(snap.all_ids[cur[nxt == cur][0]])
                raise RoutingError(
                    f"node {stuck} has no progressing neighbor (batch route)"
                )
            current[rows] = nxt
            hops[rows] += 1
            active[rows] = nxt != responsible[rows]

        return BatchRouteResult(
            sources=sources,
            target_keys=target_keys,
            responsible=snap.all_ids[responsible],
            hops=hops,
            success=np.ones(n, dtype=bool),
        )

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------

    def measure(
        self,
        rng: np.random.Generator,
        n_queries: int | None = None,
        workload: QueryWorkload | None = None,
        faulty: bool = False,
    ) -> RouteStats:
        """The paper's "N random queries" measurement, batched.

        Args:
            rng: Query randomness (labelled stream per measurement).
            n_queries: Number of queries; defaults to the live
                population size (the paper's N).
            workload: Target selection policy (default: uniform over
                live peers).
            faulty: Route through the probing/backtracking router —
                required whenever the overlay holds crashed peers. This
                path is sequential (per-query DFS state) and bypasses
                the snapshot cache.

        Returns:
            Aggregate :class:`~repro.routing.RouteStats`, identical to
            folding per-query ``route()`` results for the same RNG
            state.

        RNG-stream contract: exactly one workload draw against ``rng``
        per call (sources + targets through
        :meth:`QueryWorkload.generate_arrays
        <repro.workloads.queries.QueryWorkload.generate_arrays>`),
        whether the batch is then routed vectorized or scalar — the
        same ``(ring, rng state, count)`` always yields the same
        queries and the same statistics on either path.
        """
        count = self.substrate.ring.live_count if n_queries is None else n_queries
        wl = workload if workload is not None else QueryWorkload()
        sources, targets = wl.generate_arrays(self.substrate.ring, rng, count)
        if not faulty and self._vectorizable():
            return self.route_batch(sources, targets).stats()
        results = [
            self.substrate.route(int(source), float(target), faulty=faulty)
            for source, target in zip(sources, targets)
        ]
        return summarize_routes(results)

    def _vectorizable(self) -> bool:
        """Whether the wrapped overlay exposes the full substrate surface
        the snapshot needs; minimal ``ring``+``route`` stubs (and the
        fault-aware path) fall back to scalar routing."""
        return all(
            hasattr(self.substrate, attr)
            for attr in ("topology_version", "pointers", "neighbors_of")
        )
