"""A FIFO capacity resource for the event kernel.

Used by simulations that model contended capacities (e.g. a peer's
bandwidth slots while answering queries). Semantics follow simpy's
``Resource``: ``request()`` returns an event that succeeds once a slot
is granted; ``release()`` frees one and wakes the next waiter.
"""

from __future__ import annotations

from collections import deque

from ..errors import SimulationError
from .core import Environment, Event

__all__ = ["Resource"]


class Resource:
    """A counted resource with FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Currently granted slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Event:
        """Ask for a slot; the returned event succeeds when granted."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiting.append(event)
        return event

    def release(self) -> None:
        """Free one slot (caller must hold one)."""
        if self._in_use <= 0:
            raise SimulationError("release() without a granted slot")
        if self._waiting:
            waiter = self._waiting.popleft()
            waiter.succeed(self)  # slot transfers; _in_use unchanged
        else:
            self._in_use -= 1
