"""A FIFO capacity resource for the event kernel, plus process-resource
gates.

Used by simulations that model contended capacities (e.g. a peer's
bandwidth slots while answering queries). Semantics follow simpy's
``Resource``: ``request()`` returns an event that succeeds once a slot
is granted; ``release()`` frees one and wakes the next waiter.

The module also hosts the *process*-level resource accounting the
benchmark CI leans on: :func:`max_rss_mb` reports the peak resident set
of the current process and :func:`check_rss_ceiling` turns it into a
hard gate — the million-peer smoke test uses it to pin the
struct-of-arrays memory footprint so per-peer object regressions fail
loudly instead of silently tripling RAM.
"""

from __future__ import annotations

import resource as _resource
import sys
from collections import deque

from ..errors import SimulationError
from .core import Environment, Event

__all__ = ["Resource", "check_rss_ceiling", "max_rss_mb"]


def max_rss_mb() -> float:
    """Peak resident set size of this process, in MiB.

    ``getrusage`` reports ``ru_maxrss`` in KiB on Linux and in bytes on
    macOS; both are normalized here. The value is a high-water mark —
    it never decreases within a process lifetime.
    """
    peak = float(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - platform dependent
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def check_rss_ceiling(ceiling_mb: float) -> float:
    """Assert the process peak RSS is under ``ceiling_mb``; return it.

    Raises :class:`~repro.errors.SimulationError` when the high-water
    mark exceeds the ceiling — the benchmark-trajectory CI treats that
    as a failed gate, exactly like a wall-time regression.
    """
    peak = max_rss_mb()
    if peak > float(ceiling_mb):
        raise SimulationError(
            f"peak RSS {peak:.0f} MiB exceeds the {float(ceiling_mb):.0f} MiB ceiling"
        )
    return peak


class Resource:
    """A counted resource with FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Currently granted slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Event:
        """Ask for a slot; the returned event succeeds when granted."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiting.append(event)
        return event

    def release(self) -> None:
        """Free one slot (caller must hold one)."""
        if self._in_use <= 0:
            raise SimulationError("release() without a granted slot")
        if self._waiting:
            waiter = self._waiting.popleft()
            waiter.succeed(self)  # slot transfers; _in_use unchanged
        else:
            self._in_use -= 1
