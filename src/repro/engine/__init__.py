"""Execution engines: discrete-event simulation and batched operations.

Five engines live here:

* the discrete-event kernel (:mod:`repro.engine.core`,
  :mod:`repro.engine.resources`) — :class:`Environment` drives
  generator-based :class:`Process` objects through
  :class:`Event`/:class:`Timeout` scheduling, :class:`Resource` adds
  counted capacities, and deterministic same-time FIFO ordering keeps
  simulations reproducible;
* the batched query engine (:mod:`repro.engine.batch`) —
  :class:`BatchQueryEngine` evaluates thousands of routes per call over
  numpy arrays against any :class:`~repro.core.substrate.Substrate`,
  with a topology-snapshot cache invalidated on membership change;
* the batched construction engine (:mod:`repro.engine.construct`) —
  :class:`BatchConstructionEngine` runs partition estimation and link
  acquisition for all peers in lock-step numpy rounds, with a
  sequential reference path pinned bit-identical by tests;
* the steady-state churn engine (:mod:`repro.engine.churn`) —
  :class:`SteadyStateChurnEngine` advances an overlay through lock-step
  epochs of batched arrivals, session-expiry departures, periodic
  repair and routed probes, composing the other engines into one
  continuous-turnover simulation (same bit-identical reference-path
  contract);
* the serving engine (:mod:`repro.engine.serve`) —
  :class:`ServeEngine` is the data-plane request path: believed-
  membership owner resolution and routing over a per-version
  :class:`ServeSnapshot`, an LRU :class:`ResultCache` invalidated on
  topology/replica/belief change, and delivery verified against a
  :class:`~repro.index.replication.ReplicatedStore` (same
  bit-identical reference-path contract).
"""

from .batch import BatchQueryEngine, BatchRouteResult, TopologySnapshot
from .construct import BatchConstructionEngine, LiveView
from .core import AllOf, AnyOf, Environment, Event, Interrupt, Process, Timeout
from .resources import Resource, check_rss_ceiling, max_rss_mb
from .serve import ResultCache, ServeBatchResult, ServeEngine, ServeSnapshot

# Imported last: repro.churn.process (pulled in by repro.churn, which
# the churn engine's session distributions live under) imports this
# package's kernel names, so they must be bound before the line below
# triggers that import chain.
from .churn import ChurnEpochStats, SteadyStateChurnEngine  # noqa: E402

__all__ = [
    "AllOf",
    "AnyOf",
    "BatchConstructionEngine",
    "BatchQueryEngine",
    "BatchRouteResult",
    "ChurnEpochStats",
    "Environment",
    "Event",
    "Interrupt",
    "LiveView",
    "Process",
    "Resource",
    "ResultCache",
    "ServeBatchResult",
    "ServeEngine",
    "ServeSnapshot",
    "SteadyStateChurnEngine",
    "Timeout",
    "TopologySnapshot",
    "check_rss_ceiling",
    "max_rss_mb",
]
