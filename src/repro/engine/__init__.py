"""Execution engines: discrete-event simulation and batched queries.

Two engines live here:

* the discrete-event kernel (:mod:`repro.engine.core`,
  :mod:`repro.engine.resources`) — :class:`Environment` drives
  generator-based :class:`Process` objects through
  :class:`Event`/:class:`Timeout` scheduling, :class:`Resource` adds
  counted capacities, and deterministic same-time FIFO ordering keeps
  simulations reproducible;
* the batched query engine (:mod:`repro.engine.batch`) —
  :class:`BatchQueryEngine` evaluates thousands of routes per call over
  numpy arrays against any :class:`~repro.core.substrate.Substrate`,
  with a topology-snapshot cache invalidated on membership change;
* the batched construction engine (:mod:`repro.engine.construct`) —
  :class:`BatchConstructionEngine` runs partition estimation and link
  acquisition for all peers in lock-step numpy rounds, with a
  sequential reference path pinned bit-identical by tests.
"""

from .batch import BatchQueryEngine, BatchRouteResult, TopologySnapshot
from .construct import BatchConstructionEngine, LiveView
from .core import AllOf, AnyOf, Environment, Event, Interrupt, Process, Timeout
from .resources import Resource

__all__ = [
    "AllOf",
    "AnyOf",
    "BatchConstructionEngine",
    "BatchQueryEngine",
    "BatchRouteResult",
    "Environment",
    "Event",
    "Interrupt",
    "LiveView",
    "Process",
    "Resource",
    "Timeout",
    "TopologySnapshot",
]
