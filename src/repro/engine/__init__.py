"""Execution engines: discrete-event simulation and batched queries.

Two engines live here:

* the discrete-event kernel (:mod:`repro.engine.core`,
  :mod:`repro.engine.resources`) — :class:`Environment` drives
  generator-based :class:`Process` objects through
  :class:`Event`/:class:`Timeout` scheduling, :class:`Resource` adds
  counted capacities, and deterministic same-time FIFO ordering keeps
  simulations reproducible;
* the batched query engine (:mod:`repro.engine.batch`) —
  :class:`BatchQueryEngine` evaluates thousands of routes per call over
  numpy arrays against any :class:`~repro.core.substrate.Substrate`,
  with a topology-snapshot cache invalidated on membership change.
"""

from .batch import BatchQueryEngine, BatchRouteResult, TopologySnapshot
from .core import AllOf, AnyOf, Environment, Event, Interrupt, Process, Timeout
from .resources import Resource

__all__ = [
    "AllOf",
    "AnyOf",
    "BatchQueryEngine",
    "BatchRouteResult",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Timeout",
    "TopologySnapshot",
]
