"""Discrete-event simulation kernel (simpy-style, dependency-free).

:class:`Environment` drives generator-based :class:`Process` objects
through :class:`Event`/:class:`Timeout` scheduling; :class:`Resource`
adds counted capacities. Deterministic same-time FIFO ordering keeps
simulations reproducible.
"""

from .core import AllOf, AnyOf, Environment, Event, Interrupt, Process, Timeout
from .resources import Resource

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Timeout",
]
