"""Cached data-plane serving: believed-membership routing + result LRU.

:class:`~repro.engine.batch.BatchQueryEngine` measures what the *paper*
cares about — hop costs of greedy routing over ground-truth topology.
A deployed data plane cares about something harsher: every ``get`` must
resolve to a replica holder **as the membership view believes the world
to be**, at millions of requests against a ring that churns underneath.
:class:`ServeEngine` is that path:

* a **per-version serve snapshot** (:class:`ServeSnapshot`) — the
  believed-live peers as flat arrays (positions, exact ``uint64`` keys,
  a believed-row neighbor matrix), so owner lookup is one
  ``searchsorted`` and routing is the lock-step greedy walk restricted
  to believed-live peers. Because the walk never enters a believed-dead
  peer, it cannot abort on missing successor pointers the way the
  ground-truth batch walk does mid-churn — and it never *routes via* a
  peer the view has evicted;
* an **LRU result cache** (:class:`ResultCache`) keyed on the target
  key, every entry stamped with the serve version it was computed at
  and served **only** while that version is current — membership
  change, link change, or replica movement each bump the version, so a
  cache can return stale bytes for at most zero versions, never "the
  old owner";
* **stale-serve accounting**: a believed owner that is truth-dead (the
  detection-lag window) fails the request and increments
  ``stale_serves`` — the serving-side twin of the replication layer's
  phantom replicas.

The serve **version** is the triple ``(topology_version,
data_version, evictions)``: substrate links/membership, replica
placement, and probe-view belief each invalidate independently.

``vectorized=False`` swaps every kernel (owner lookup, greedy walk,
holder check) for a pure-Python twin that must produce **bit-identical**
:class:`ServeBatchResult` arrays — the differential the test suite
pins, cache-enabled vs cache-disabled and vectorized vs reference.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigError, RoutingError
from ..ring import keyspace
from .batch import BatchQueryEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.substrate import Substrate
    from ..index.replication import ReplicatedStore
    from ..membership import MembershipView

__all__ = ["ResultCache", "ServeBatchResult", "ServeEngine", "ServeSnapshot"]

_KEY_MASK = (1 << 64) - 1


class ResultCache:
    """LRU result cache with version-stamped entries.

    Every entry records the serve version it was computed at; a read
    only returns the entry while the caller's current version equals the
    stored one (the CACHE001 contract — see ``docs/serving.md``), so a
    topology/membership/replica change can never resurface a stale
    owner. Stale entries are dropped lazily on the read that finds them.

    Args:
        capacity: Maximum retained entries; least-recently-used entries
            are evicted beyond it (0 disables caching entirely).
    """

    def __init__(self, capacity: int = 1 << 20) -> None:
        if capacity < 0:
            raise ConfigError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[float, tuple[object, tuple]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: float, version: object) -> tuple | None:
        """The payload cached for ``key`` at exactly ``version``, else
        ``None`` (counted as a miss; version-mismatched entries are
        invalidated on the spot)."""
        entry = self._entries.get(key)
        if entry is not None:
            stored_version, payload = entry
            if stored_version == version:
                self._entries.move_to_end(key)
                self.hits += 1
                return payload
            del self._entries[key]
            self.invalidations += 1
        self.misses += 1
        return None

    def put(self, key: float, version: object, payload: tuple) -> None:
        """Insert/overwrite the entry for ``key`` stamped ``version``."""
        if self.capacity == 0:
            return
        self._entries[key] = (version, payload)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (bulk invalidation)."""
        self.invalidations += len(self._entries)
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Lifetime ``hits / (hits + misses)`` (0.0 before any read)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class ServeSnapshot:
    """Array view of the *believed-live* overlay at one serve version.

    The successor/owner cache of the serving path: positions, exact
    keys and the neighbor matrix are precomputed once per version, so
    per-request work is pure array gathering. Rows index believed-live
    peers in clockwise (position) order; the believed ring successor of
    row ``i`` is implicitly ``(i + 1) % m``. Links to believed-dead
    peers are dropped at capture — the walk cannot route via them.

    Attributes:
        version: The serve version triple this snapshot was built at.
        ids: Believed-live node ids, position order.
        pos: Their unit-circle positions (sorted).
        keys: Exact ``uint64`` twins of ``pos``.
        row_of: ``node id -> believed row`` translation (-1 unknown or
            believed-dead).
        nbr_rows: Padded believed-row neighbor matrix (-1 padding),
            link-table order.
    """

    version: object
    ids: np.ndarray
    pos: np.ndarray
    keys: np.ndarray
    row_of: np.ndarray
    nbr_rows: np.ndarray

    @classmethod
    def capture(
        cls, substrate: "Substrate", view: "MembershipView", version: object
    ) -> "ServeSnapshot":
        """Materialize the believed-live topology of ``substrate`` as
        seen through ``view``, stamped with ``version``.

        The neighbor matrix is built the same way on both execution
        paths (struct-of-arrays gather when the substrate exposes flat
        state, per-peer link lists otherwise), so the vectorized and
        reference walk kernels consume identical candidates.
        """
        ring = substrate.ring
        all_ids = ring.ids_array(live_only=False)
        all_pos = ring.positions_array(live_only=False)
        all_keys = ring.keys_array(live_only=False)
        believed = view.live_ids()
        if believed.size == 0:
            raise ConfigError("serve snapshot needs at least one believed-live peer")
        if believed.size == all_ids.size:
            ids, pos, keys = all_ids, all_pos, all_keys
        else:
            mask = np.isin(all_ids, believed, assume_unique=True)
            ids, pos, keys = all_ids[mask], all_pos[mask], all_keys[mask]
        m = int(ids.size)
        max_id = int(all_ids.max()) if all_ids.size else -1
        row_of = np.full(max_id + 2, -1, dtype=np.int64)
        row_of[ids] = np.arange(m, dtype=np.int64)

        state = getattr(substrate, "state", None)
        if state is not None and getattr(ring, "state", None) is state and state.link_width:
            slots = state.slots_of(ids)
            links = state.out_links[slots].astype(np.int64)
            width = int(state.link_width)
            have = np.arange(width) < state.out_count[slots][:, None]
            safe = np.clip(links, 0, row_of.size - 1)
            trans = np.where(have & (links >= 0) & (links < row_of.size), row_of[safe], -1)
            nbr_rows = trans if width else np.full((m, 1), -1, dtype=np.int64)
        else:
            lists = cls._link_lists(substrate, ids)
            width = max(1, max((len(links) for links in lists), default=0))
            nbr_rows = np.full((m, width), -1, dtype=np.int64)
            for row, links in enumerate(lists):
                for col, target in enumerate(links):
                    target = int(target)
                    nbr_rows[row, col] = row_of[target] if 0 <= target <= max_id else -1
        if nbr_rows.shape[1] == 0:
            nbr_rows = np.full((m, 1), -1, dtype=np.int64)
        return cls(
            version=version, ids=ids, pos=pos, keys=keys, row_of=row_of, nbr_rows=nbr_rows
        )

    @staticmethod
    def _link_lists(substrate: "Substrate", ids: np.ndarray) -> list[list[int]]:
        """Per-believed-peer long-link target lists, link-table order
        (the scalar fallback of :meth:`capture`)."""
        nodes = getattr(substrate, "nodes", None)
        if nodes is not None:
            return [list(nodes[int(i)].out_links) for i in ids]
        fingers = getattr(substrate, "fingers", None)
        if fingers is not None:
            return [list(fingers[int(i)]) for i in ids]
        return [[] for __ in range(int(ids.size))]

    @property
    def size(self) -> int:
        """Number of believed-live peers in the snapshot."""
        return int(self.ids.size)

    def owner_rows(self, target_keys: np.ndarray) -> np.ndarray:
        """Believed owner (first believed-live clockwise successor) row
        per key — the vectorized ``successor_of_key`` over belief."""
        idx = np.searchsorted(self.pos, np.asarray(target_keys, dtype=float), side="left")
        return idx % self.size


@dataclass(frozen=True)
class ServeBatchResult:
    """Per-request outcome arrays of one serve batch.

    Attributes:
        target_keys: Requested keys.
        owners: Believed owner node id per request (always a
            believed-live peer — never a peer the view has evicted).
        hit: Served from the result cache (hops charged 0).
        found: The key matched a surviving catalog item.
        success: Delivered — found, owner truth-live, and the owner
            actually holds a replica.
        stale: Believed owner was truth-dead (detection-lag window);
            the request failed even though routing "worked".
        hops: Believed-walk forward hops charged (0 on cache hits).
    """

    target_keys: np.ndarray
    owners: np.ndarray
    hit: np.ndarray
    found: np.ndarray
    success: np.ndarray
    stale: np.ndarray
    hops: np.ndarray

    def as_dict(self) -> dict[str, object]:
        """Aggregate JSON-ready summary (benchmarks, golden fixtures)."""
        n = int(self.target_keys.size)
        routed = int((~self.hit).sum())
        return {
            "requests": n,
            "cache_hits": int(self.hit.sum()),
            "found": int(self.found.sum()),
            "successes": int(self.success.sum()),
            "stale_serves": int(self.stale.sum()),
            "total_hops": int(self.hops.sum()),
            "mean_hops_uncached": (int(self.hops.sum()) / routed) if routed else 0.0,
        }


class ServeEngine(BatchQueryEngine):
    """The data-plane request path: cached, believed-membership serving.

    Extends :class:`~repro.engine.batch.BatchQueryEngine` (all
    measurement APIs still work) with :meth:`serve_batch`: resolve each
    request key to its believed owner, route to it over believed-live
    peers only, and verify delivery against the replicated store —
    with an LRU result cache in front, invalidated by serve-version
    change.

    Args:
        substrate: Any overlay satisfying the
            :class:`~repro.core.substrate.Substrate` protocol.
        store: The :class:`~repro.index.replication.ReplicatedStore`
            holding the items being served (must wrap
            ``substrate.ring``).
        membership: The :class:`~repro.membership.views.MembershipView`
            requests believe (must wrap ``substrate.ring``).
        cache_size: Result-cache capacity (0 disables result caching;
            the serve snapshot is always cached per version).
        vectorized: ``True`` runs the numpy kernels; ``False`` the
            bit-identical pure-Python reference twin.

    Attributes:
        result_cache: The :class:`ResultCache` (hit/miss/eviction
            counters).
        stale_serves: Requests that failed because the believed owner
            was truth-dead, lifetime.
    """

    def __init__(
        self,
        substrate: "Substrate",
        store: "ReplicatedStore",
        membership: "MembershipView",
        cache_size: int = 1 << 20,
        vectorized: bool = True,
    ) -> None:
        super().__init__(substrate)
        if store.ring is not substrate.ring:
            raise ConfigError("replicated store wraps a different ring than the substrate")
        if membership.ring is not substrate.ring:
            raise ConfigError("membership view wraps a different ring than the substrate")
        self.store = store
        self.membership = membership
        self.vectorized = bool(vectorized)
        self.result_cache = ResultCache(cache_size)
        self.stale_serves = 0
        self._serve_cache: ServeSnapshot | None = None

    # ------------------------------------------------------------------
    # versioning + snapshot cache
    # ------------------------------------------------------------------

    @property
    def serve_version(self) -> tuple:
        """The serving invalidation triple: substrate
        ``topology_version`` (links/membership), store ``data_version``
        (replica placement) and the view's eviction count (belief).
        Any component changing makes every cached result unservable."""
        return (
            self.substrate.topology_version,
            self.store.data_version,
            int(getattr(self.membership, "evictions", 0)),
        )

    def serve_snapshot(self) -> ServeSnapshot:
        """The believed-live topology at the *current* serve version,
        rebuilt only when the version moved (the per-version
        successor/owner cache)."""
        version = self.serve_version
        if self._serve_cache is None or self._serve_cache.version != version:
            self._serve_cache = ServeSnapshot.capture(
                self.substrate, self.membership, version
            )
        return self._serve_cache

    def invalidate(self) -> None:
        """Drop the route snapshot, the serve snapshot and every cached
        result unconditionally (next batch rebuilds)."""
        super().invalidate()
        self._serve_cache = None
        self.result_cache.clear()  # repro: allow[CACHE001] bulk invalidation, not a serve read

    # ------------------------------------------------------------------
    # the serve path
    # ------------------------------------------------------------------

    def serve_batch(self, sources: np.ndarray, target_keys: np.ndarray) -> ServeBatchResult:
        """Serve one ``get`` batch; returns per-request outcome arrays.

        Each request resolves its believed owner, routes to it over
        believed-live peers (cache hits skip routing and charge zero
        hops) and succeeds iff the key names a surviving item whose
        believed owner is truth-alive and truly holds a replica. A
        truth-dead believed owner is a **stale serve**: counted, failed,
        never silently redirected — the detection-lag data risk made
        visible. Results enter the LRU cache stamped with the current
        serve version.

        Raises:
            RoutingError: A source is outside the believed-live set, or
                a believed walk exceeded the routing budget.
        """
        sources = np.asarray(sources, dtype=np.int64)
        target_keys = np.asarray(target_keys, dtype=float)
        if sources.shape != target_keys.shape:
            raise ValueError("sources and target_keys must be aligned 1-d arrays")
        version = self.serve_version
        snap = self.serve_snapshot()
        n = int(sources.size)

        owners = np.empty(n, dtype=np.int64)
        hit = np.zeros(n, dtype=bool)
        found = np.zeros(n, dtype=bool)
        success = np.zeros(n, dtype=bool)
        stale = np.zeros(n, dtype=bool)
        hops = np.zeros(n, dtype=np.int64)

        miss_idx: list[int] = []
        for i in range(n):
            payload = self.result_cache.get(float(target_keys[i]), version)
            if payload is not None:
                owners[i], found[i], success[i], stale[i] = payload
                hit[i] = True
            else:
                miss_idx.append(i)
        if miss_idx:
            miss = np.asarray(miss_idx, dtype=np.int64)
            m_keys = target_keys[miss]
            m_sources = sources[miss]
            source_rows = snap.row_of[np.clip(m_sources, 0, snap.row_of.size - 1)]
            source_rows = np.where(
                (m_sources >= 0) & (m_sources < snap.row_of.size), source_rows, -1
            )
            if np.any(source_rows < 0):
                bad = int(m_sources[source_rows < 0][0])
                raise RoutingError(f"serve source {bad} is not believed live")
            if self.vectorized:
                owner_rows = snap.owner_rows(m_keys)
            else:
                positions = [float(p) for p in snap.pos]
                owner_rows = np.asarray(
                    [bisect.bisect_left(positions, float(k)) % snap.size for k in m_keys],
                    dtype=np.int64,
                )
            m_owners = snap.ids[owner_rows]
            m_hops = self._walk_hops(snap, source_rows, owner_rows, m_keys)
            m_found, m_success, m_stale = self._verify(m_keys, m_owners)
            owners[miss] = m_owners
            found[miss] = m_found
            success[miss] = m_success
            stale[miss] = m_stale
            hops[miss] = m_hops
            for j, i in enumerate(miss_idx):
                self.result_cache.put(
                    float(target_keys[i]),
                    version,
                    (int(m_owners[j]), bool(m_found[j]), bool(m_success[j]), bool(m_stale[j])),
                )
        self.stale_serves += int(stale.sum())
        return ServeBatchResult(
            target_keys=target_keys,
            owners=owners,
            hit=hit,
            found=found,
            success=success,
            stale=stale,
            hops=hops,
        )

    # ------------------------------------------------------------------
    # kernels (vectorized + reference twins)
    # ------------------------------------------------------------------

    def _verify(
        self, target_keys: np.ndarray, owner_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Delivery verdict per request: ``(found, success, stale)``.

        ``found`` — the key names a surviving catalog item; ``stale`` —
        the believed owner is truth-dead; ``success`` — found, owner
        truth-alive, and the owner is among the item's replica holders.
        """
        store = self.store
        rows = store.lookup_rows(target_keys)
        found = rows >= 0
        owner_live = store.truth_live_mask(owner_ids)
        stale = ~owner_live
        if self.vectorized:
            safe = np.where(found, rows, 0)
            holds = (store.holders[safe] == owner_ids[:, None]).any(axis=1) & found
        else:
            holds = np.zeros(found.shape, dtype=bool)
            for i in range(int(rows.size)):
                if rows[i] < 0:
                    continue
                holder_row = store.holders[int(rows[i])]
                holds[i] = any(int(h) == int(owner_ids[i]) for h in holder_row)
        return found, found & owner_live & holds, stale

    def _walk_hops(
        self,
        snap: ServeSnapshot,
        source_rows: np.ndarray,
        owner_rows: np.ndarray,
        target_keys: np.ndarray,
    ) -> np.ndarray:
        """Greedy-walk hop counts from each source to its believed owner
        over believed-live peers only.

        Per hop: deliver to the believed ring successor when the key
        falls in ``(current, successor]``, else forward to the neighbor
        with maximal clockwise progress not passing the key (first-wins
        ties, successor fallback) — the batch router's rules restricted
        to belief. Vectorized and reference twins are bit-identical.

        Raises:
            RoutingError: A walk exceeded the routing budget.
        """
        if self.vectorized:
            return self._walk_vectorized(snap, source_rows, owner_rows, target_keys)
        return self._walk_reference(snap, source_rows, owner_rows, target_keys)

    def _walk_vectorized(
        self,
        snap: ServeSnapshot,
        source_rows: np.ndarray,
        owner_rows: np.ndarray,
        target_keys: np.ndarray,
    ) -> np.ndarray:
        """Lock-step numpy walk kernel (see :meth:`_walk_hops`)."""
        m = snap.size
        n = int(source_rows.size)
        targets = keyspace.from_units(target_keys)
        current = source_rows.copy()
        hops = np.zeros(n, dtype=np.int64)
        budget = self.routing.budget
        active = current != owner_rows
        while np.any(active):
            rows = np.nonzero(active)[0]
            if int(hops[rows].max(initial=0)) >= budget:
                raise RoutingError(f"believed serve walk exceeded budget {budget}")
            cur = current[rows]
            tgt = targets[rows]
            cur_key = snap.keys[cur]
            succ = (cur + 1) % m
            succ_key = snap.keys[succ]
            deliver = keyspace.in_cw_intervals(tgt, cur_key, succ_key)
            nxt = succ.copy()
            forward = ~deliver
            if np.any(forward):
                f_cur = cur[forward]
                f_key = cur_key[forward]
                span = tgt[forward] - f_key
                succ_progress = succ_key[forward] - f_key
                cand = snap.nbr_rows[f_cur]
                valid = cand >= 0
                cand_key = snap.keys[np.where(valid, cand, 0)]
                progress = cand_key - f_key[:, None]
                progress = np.where(
                    valid & (progress <= span[:, None]), progress, np.uint64(0)
                )
                best_col = progress.argmax(axis=1)
                take = np.arange(best_col.size)
                best_progress = progress[take, best_col]
                best = cand[take, best_col]
                improved = best_progress > succ_progress
                nxt[forward] = np.where(improved, best, succ[forward])
            current[rows] = nxt
            hops[rows] += 1
            active[rows] = nxt != owner_rows[rows]
        return hops

    def _walk_reference(
        self,
        snap: ServeSnapshot,
        source_rows: np.ndarray,
        owner_rows: np.ndarray,
        target_keys: np.ndarray,
    ) -> np.ndarray:
        """Pure-Python walk twin (see :meth:`_walk_hops`) — one query at
        a time, exact integer geometry, identical hop counts."""
        m = snap.size
        keys_int = [int(k) for k in snap.keys]
        nbrs = [[int(c) for c in row if c >= 0] for row in snap.nbr_rows]
        budget = self.routing.budget
        hops = np.zeros(int(source_rows.size), dtype=np.int64)
        for q in range(int(source_rows.size)):
            cur = int(source_rows[q])
            owner = int(owner_rows[q])
            tgt = keyspace.from_unit(float(target_keys[q]))
            count = 0
            while cur != owner:
                if count >= budget:
                    raise RoutingError(f"believed serve walk exceeded budget {budget}")
                cur_key = keys_int[cur]
                succ = (cur + 1) % m
                succ_key = keys_int[succ]
                span = (tgt - cur_key) & _KEY_MASK
                succ_progress = (succ_key - cur_key) & _KEY_MASK
                if cur_key == succ_key or 0 < span <= succ_progress:
                    nxt = succ
                else:
                    best, best_progress = succ, succ_progress
                    for cand in nbrs[cur]:
                        progress = (keys_int[cand] - cur_key) & _KEY_MASK
                        if progress <= span and progress > best_progress:
                            best, best_progress = cand, progress
                    nxt = best
                cur = nxt
                count += 1
            hops[q] = count
        return hops
