"""Batched overlay construction and maintenance — the build hot path.

Routing went array-oriented in PR 1 and exact in PR 3, but *construction*
stayed scalar: ``rewire_all`` re-estimates every peer's partition table
through per-node Python loops and places long links one slot at a time.
At the ROADMAP's scales that is the binding constraint — a 10k-peer full
rewire spends seconds in the interpreter, and a 100k-peer bootstrap is
minutes of list splicing. :class:`BatchConstructionEngine` re-states the
whole construction procedure as lock-step numpy rounds:

* **partition estimation** runs for all peers simultaneously — one
  ``(peers, samples)`` draw per recursion level, medians selected by
  exact ``uint64`` clockwise rank on the fixed-point keyspace, level
  termination decided by the same comparison-exact border clamp the
  scalar estimator uses (:func:`repro.core.estimators.border_is_terminal`).
  ``WALK`` mode advances every peer's restricted Metropolis–Hastings
  walker in lock-step over one shared padded neighbor matrix
  (:class:`repro.sampling.BatchRestrictedWalker`);
* **link acquisition** proceeds in vectorized rounds: every unfinished
  peer draws a partition and candidate peers, refusals and the
  power-of-two in-degree tiebreak are evaluated against a round-start
  snapshot, and acknowledgments are committed with ``np.argsort``-based
  conflict resolution — requests are ordered by (candidate, priority)
  and the first ``spare`` requesters per candidate win, which is
  *bit-identical* to replaying the round one request at a time in
  priority order.

Determinism contract
--------------------

The engine defines round-based semantics of its own (it is **not**
draw-for-draw aligned with the one-peer-at-a-time
:func:`repro.core.construction.rewire_all`; both are faithful
implementations of the paper's procedure). Within the engine, the RNG
draw layout is fixed and state-independent — every round draws the same
array shapes regardless of what individual peers decide — so the
vectorized kernels and the pure-Python sequential reference
(``vectorized=False``) consume one stream identically and must produce
bit-identical link sets, partition tables and
:class:`~repro.core.construction.LinkAcquisitionStats`. The test suite
pins that equivalence property-style and via a golden build fixture.

Typical use goes through the substrate surface::

    overlay = OscarOverlay(OscarConfig(), seed=42)
    overlay.grow_batch(100_000, GnutellaLikeDistribution(), ConstantDegrees(12))
    stats = overlay.rewire_batch()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..config import SamplingMode
from ..core.construction import LinkAcquisitionStats
from ..degree import DegreeDistribution, assign_caps
from ..errors import SamplingError
from ..protocol.decisions import accepts_link, link_winner_key
from ..protocol.estimation import cw_arc_slice, select_border
from ..ring import rebuild_pointers
from ..sampling.batch_walk import BatchRestrictedWalker, in_cw_arc
from ..workloads import KeyDistribution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.node import OscarNode
    from ..core.overlay import OscarOverlay

__all__ = ["BatchConstructionEngine", "LiveView"]


class LiveView:
    """Array view of the live population at one instant (ring order).

    Attributes:
        ids: Node id per row, sorted by position.
        pos: Float position per row (sorted — the ``searchsorted`` base
            for arc counting, exactly the ring's own lookup array).
        keys: Exact ``uint64`` keyspace twin of ``pos``.
        row_of: ``node id -> row`` translation (-1 for unknown/dead).
        slots: Row-aligned physical slots into ``state`` — the bridge
            the array kernels use to read/write per-peer columns.
        state: The overlay's shared struct-of-arrays substrate state.
        nodes: Row-aligned :class:`~repro.core.node.OscarNode` views,
            materialized lazily (only the sequential reference path and
            the test suite touch per-peer objects).
    """

    __slots__ = ("ids", "pos", "keys", "row_of", "slots", "state", "_nodes")

    def __init__(
        self,
        ids: np.ndarray,
        pos: np.ndarray,
        keys: np.ndarray,
        row_of: np.ndarray,
        slots: np.ndarray | None = None,
        state=None,
        nodes: "tuple[OscarNode, ...] | None" = None,
    ) -> None:
        self.ids = ids
        self.pos = pos
        self.keys = keys
        self.row_of = row_of
        self.slots = slots
        self.state = state
        self._nodes = tuple(nodes) if nodes is not None else None

    @property
    def m(self) -> int:
        """Live peer count."""
        return int(self.ids.size)

    @property
    def nodes(self) -> "tuple[OscarNode, ...]":
        """Row-aligned node views (built on first access)."""
        if self._nodes is None:
            from ..core.node import OscarNode

            self._nodes = tuple(
                OscarNode._view(self.state, int(s)) for s in self.slots
            )
        return self._nodes

    @classmethod
    def capture(cls, overlay: "OscarOverlay") -> "LiveView":
        """Materialize the overlay's current live population."""
        ring = overlay.ring
        ids = ring.ids_array(live_only=True)
        pos = ring.positions_array(live_only=True)
        keys = ring.keys_array(live_only=True)
        max_id = int(ids.max()) if ids.size else -1
        row_of = np.full(max_id + 2, -1, dtype=np.int64)
        row_of[ids] = np.arange(ids.size, dtype=np.int64)
        state = getattr(overlay, "state", None)
        if state is None:
            nodes = tuple(overlay.nodes[int(i)] for i in ids)  # repro: allow[SOA001] no-SoA fallback
            return cls(ids, pos, keys, row_of, nodes=nodes)
        return cls(ids, pos, keys, row_of, slots=ring.slots_array(live_only=True), state=state)


def _isin_sorted(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Membership of ``values`` in a sorted ``table`` (vectorized, exact
    equality — works for the int64 link-pair keys and float positions)."""
    if table.size == 0:
        return np.zeros(values.shape, dtype=bool)
    idx = np.minimum(np.searchsorted(table, values), table.size - 1)
    return table[idx] == values


@dataclass(frozen=True)
class _ArcTables:
    """Partition arcs of the requesting rows as padded matrices.

    Row ``i`` describes requester ``rows[i]``'s table: partition ``p``
    (0-indexed) is the clockwise arc ``(starts[i, p], ends[i, p]]``,
    ``valid[i, p]`` masks degenerate (provably empty) arcs, and
    ``k_count[i]`` is the number of partitions.
    """

    starts: np.ndarray
    ends: np.ndarray
    valid: np.ndarray
    k_count: np.ndarray


class BatchConstructionEngine:
    """Vectorized construction/maintenance for one
    :class:`~repro.core.overlay.OscarOverlay`.

    Args:
        overlay: The Oscar overlay to build/maintain.
        vectorized: ``True`` (default) runs the numpy lock-step kernels;
            ``False`` runs the sequential reference — same RNG stream,
            same round semantics, pure-Python decisions — whose output
            the vectorized path must match bit-for-bit. The reference
            exists for equivalence testing and as the executable
            specification of the round semantics.
    """

    def __init__(self, overlay: "OscarOverlay", vectorized: bool = True) -> None:
        self.overlay = overlay
        self.vectorized = bool(vectorized)

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------

    def rewire(self, rng: np.random.Generator) -> LinkAcquisitionStats:
        """One global rewiring round, batched.

        Same epoch structure as :func:`repro.core.construction.rewire_all`:
        teardown of every long link, partition re-estimation for all
        peers against the current population, then link re-acquisition
        under a random peer priority so no cohort systematically wins
        the race for scarce in-capacity.

        RNG-stream contract: all randomness comes from the passed
        ``rng`` in a fixed, state-independent draw layout (one
        estimation draw per level for every active peer, one priority
        shuffle, one partition + candidate draw per acquisition round)
        — both execution paths consume the stream identically, which is
        what makes ``vectorized=False`` bit-identical.
        """
        view = LiveView.capture(self.overlay)
        if view.m < 2:
            raise SamplingError("cannot rewire an overlay with fewer than 2 live peers")
        view.state.clear_links(view.slots)
        view.state.in_deg[view.slots] = 0
        rows = np.arange(view.m, dtype=np.int64)
        arcs = self._estimate(rng, view, rows, track_spend=True)
        priority_of = self._draw_priority(rng, view, rows)
        return self._acquire(rng, view, rows, arcs, priority_of)

    def grow(
        self,
        target_size: int,
        keys: KeyDistribution,
        degrees: DegreeDistribution,
        paired_caps: bool = True,
    ) -> LinkAcquisitionStats:
        """Grow to ``target_size`` live peers in one bulk step.

        Keys and caps are drawn in bulk (collisions redrawn), all
        newcomers are spliced into the ring with one sorted merge
        (:meth:`Ring.insert_many <repro.ring.ring.Ring.insert_many>`),
        ring pointers are rebuilt once, and the newcomers then estimate
        partitions and acquire links as one batched cohort against the
        full population — existing peers keep their links, mirroring the
        incremental contract of scalar ``grow``.

        RNG-stream contract: consumes the overlay's join stream
        (``_join_rng``) — state-dependent on the overlay's history, but
        with the same fixed draw layout as :meth:`rewire`, so for a
        given overlay state both execution paths consume it identically
        and grow bit-identical cohorts.
        """
        overlay = self.overlay
        missing = int(target_size) - overlay.ring.live_count
        if missing <= 0:
            return LinkAcquisitionStats()
        rng = overlay._join_rng
        caps_in, caps_out = assign_caps(degrees, rng, missing, paired=paired_caps)
        positions = self._draw_positions(rng, keys, missing)
        first_id = overlay._next_id
        new_ids = list(range(first_id, first_id + missing))
        overlay._next_id += missing
        overlay.ring.insert_many(zip(new_ids, positions))
        new_slots = overlay.state.slots_of(np.asarray(new_ids, dtype=np.int64))
        overlay.state.cap_in[new_slots] = np.asarray(caps_in, dtype=np.int64)
        overlay.state.cap_out[new_slots] = np.asarray(caps_out, dtype=np.int64)
        rebuild_pointers(overlay.ring, overlay.pointers)
        if overlay.ring.live_count < 2:
            return LinkAcquisitionStats()
        view = LiveView.capture(overlay)
        rows = np.sort(view.row_of[np.asarray(new_ids, dtype=np.int64)])
        arcs = self._estimate(rng, view, rows, track_spend=False)
        priority_of = self._draw_priority(rng, view, rows)
        return self._acquire(rng, view, rows, arcs, priority_of)

    # ------------------------------------------------------------------
    # bulk membership helpers
    # ------------------------------------------------------------------

    def _draw_positions(
        self, rng: np.random.Generator, keys: KeyDistribution, count: int
    ) -> np.ndarray:
        """``count`` distinct, unoccupied positions from the key sampler.

        Bulk draws with vectorized collision rejection (against the ring
        — dead entries included, positions are forever — *and* within
        the batch, keeping first occurrences) replace the scalar
        one-key-at-a-time try/except loop. Float key collisions have
        probability ~0, so the expected number of redraw passes is 1.
        """
        occupied = np.sort(
            np.asarray(self.overlay.ring.positions_array(live_only=False), dtype=float)
        )
        accepted: list[float] = []
        seen: set[float] = set()
        need = count
        while need > 0:
            draw = np.asarray(keys.sample(rng, need), dtype=float)
            fresh = ~_isin_sorted(draw, occupied)
            for value in draw[fresh]:
                position = float(value)
                if position in seen:
                    continue
                seen.add(position)
                accepted.append(position)
            need = count - len(accepted)
        return np.asarray(accepted, dtype=float)

    def _draw_priority(
        self, rng: np.random.Generator, view: LiveView, rows: np.ndarray
    ) -> np.ndarray:
        """Random acquisition priority over the requesting rows.

        Returns a length-``m`` array mapping a row to its rank in the
        shuffled order (-1 for non-requesters); ascending rank is the
        fixed sequential order conflict resolution replays.
        """
        order = rows.copy()
        rng.shuffle(order)
        priority_of = np.full(view.m, -1, dtype=np.int64)
        priority_of[order] = np.arange(order.size, dtype=np.int64)
        return priority_of

    # ------------------------------------------------------------------
    # partition estimation (all peers in lock-step)
    # ------------------------------------------------------------------

    def _estimate(
        self,
        rng: np.random.Generator,
        view: LiveView,
        rows: np.ndarray,
        track_spend: bool,
    ) -> _ArcTables:
        """(Re-)estimate partition tables for ``rows``; returns their arcs.

        Writes the partition columns of the substrate state (which back
        ``node.partitions`` — the view the rest of the library reads)
        and returns the same tables as padded arc matrices for the
        acquisition rounds. ``track_spend`` mirrors the rewiring path's
        ``samples_spent`` cost accounting.
        """
        config = self.overlay.config
        m = view.m
        if m < 2:
            raise SamplingError("partition estimation needs at least 2 live peers")
        k = config.partitions_for(max(1, m))
        n = int(rows.size)
        origin = view.pos[rows]
        far_end = view.pos[(rows - 1) % m]
        levels = max(0, k - 1)
        medians = np.zeros((n, max(1, levels)), dtype=float)
        counts = np.zeros(n, dtype=np.int64)
        if levels:
            if config.sampling_mode is SamplingMode.ORACLE:
                self._oracle_levels(view, rows, medians, counts, levels)
            else:
                self._sampled_levels(rng, view, rows, medians, counts, levels)
        state = view.state
        est_slots = view.slots[rows]
        state.part_origin[est_slots] = origin
        state.part_far_end[est_slots] = far_end
        state.ensure_median_width(medians.shape[1])
        state.medians[est_slots, :] = 0.0
        state.medians[est_slots, : medians.shape[1]] = medians
        state.n_medians[est_slots] = counts
        if track_spend:
            state.samples_spent[est_slots] += config.sample_size * counts
        return self._arc_tables(origin, far_end, medians, counts)

    def _oracle_levels(
        self,
        view: LiveView,
        rows: np.ndarray,
        medians: np.ndarray,
        counts: np.ndarray,
        levels: int,
    ) -> None:
        """Exact recursive medians straight from the ring order.

        The peer at clockwise rank ``remaining // 2`` splits each level's
        remaining near-side population — pure index arithmetic shared by
        both execution paths (no randomness, no per-peer divergence).
        """
        m = view.m
        remaining = m - 1
        level = 0
        while level < levels:
            half = remaining // 2
            if half < 1:
                break
            medians[:, level] = view.pos[(rows + half) % m]
            remaining = half
            level += 1
        counts[:] = level

    def _sampled_levels(
        self,
        rng: np.random.Generator,
        view: LiveView,
        rows: np.ndarray,
        medians: np.ndarray,
        counts: np.ndarray,
        levels: int,
    ) -> None:
        """Sampled recursive medians (``UNIFORM`` or ``WALK``), lock-step.

        Per level every still-active peer draws ``sample_size`` arc
        members (one shared RNG call), takes the exact-rank clockwise
        sample median, and stops when its arc runs empty or the border
        clamp fires — the vectorized restatement of
        :func:`repro.core.estimators.sampled_partitions`.
        """
        config = self.overlay.config
        m = view.m
        sample_size = config.sample_size
        origin = view.pos[rows]
        okey = view.keys[rows]
        prev = view.pos[(rows - 1) % m].copy()
        active = np.ones(int(rows.size), dtype=bool)
        walk = config.sampling_mode is SamplingMode.WALK
        if walk:
            walker = BatchRestrictedWalker(view.pos, self._neighbor_matrix(view))
            start_rows = (rows + 1) % m
        for level in range(levels):
            act = np.nonzero(active)[0]
            if act.size == 0:
                break
            if walk:
                started = in_cw_arc(view.pos[start_rows[act]], origin[act], prev[act])
                # A walker whose ring successor fell outside the shrunken
                # arc sees an arc empty of other live peers: stop (the
                # scalar estimator bails with an empty sample the same way).
                active[act[~started]] = False
                act = act[started]
                if act.size == 0:
                    break
                walk_fn = walker.walk if self.vectorized else walker.walk_reference
                samples = walk_fn(
                    rng,
                    start_rows[act],
                    origin[act],
                    prev[act],
                    sample_size,
                    config.walk_hops,
                )
            else:
                samples, drew = self._uniform_samples(rng, view, origin[act], prev[act])
                if not drew.all():
                    active[act[~drew]] = False
                    samples = samples[drew]
                    act = act[drew]
                    if act.size == 0:
                        continue
            if self.vectorized:
                border, stop = self._select_borders(
                    view, okey[act], origin[act], prev[act], samples
                )
            else:
                border, stop = self._select_borders_reference(
                    view, okey[act], origin[act], prev[act], samples
                )
            active[act[stop]] = False
            keep = act[~stop]
            medians[keep, level] = border[~stop]
            counts[keep] += 1
            prev[keep] = border[~stop]

    def _uniform_samples(
        self,
        rng: np.random.Generator,
        view: LiveView,
        origin: np.ndarray,
        prev: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One ``(active peers, sample_size)`` uniform arc draw.

        The uniform matrix is drawn for *every* active peer — peers whose
        arc holds no peers discard their row (``drew`` false) — so the
        draw layout is state-independent and both execution paths consume
        the stream identically. Returns ``(sample rows, drew mask)``.
        """
        m = view.m
        sample_size = self.overlay.config.sample_size
        u = rng.random((int(origin.size), sample_size))
        lo = np.searchsorted(view.pos, origin, side="right")
        hi = np.searchsorted(view.pos, prev, side="right")
        count = np.where(origin < prev, hi - lo, np.where(origin == prev, m, m - lo + hi))
        drew = count > 0
        if self.vectorized:
            offsets = (u * count[:, None]).astype(np.int64)
            samples = (lo[:, None] + offsets) % m
            return samples, drew
        samples = np.zeros((int(origin.size), sample_size), dtype=np.int64)
        for i in range(int(origin.size)):
            if not drew[i]:
                continue
            for j in range(sample_size):
                samples[i, j] = (int(lo[i]) + int(u[i, j] * int(count[i]))) % m
        return samples, drew

    def _select_borders(
        self,
        view: LiveView,
        okey: np.ndarray,
        origin: np.ndarray,
        prev: np.ndarray,
        samples: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized clockwise sample medians + border clamp.

        Samples are ranked by exact wrapping ``uint64`` distance from
        each origin (stable ties by draw index); the returned border is
        the float reconstruction ``normalize(origin + cw_distance)`` of
        the selected sample — the historical output format — and
        ``stop`` marks borders the clamp rejects.
        """
        n, sample_size = samples.shape
        distance = view.keys[samples] - okey[:, None]  # wrapping uint64
        order = np.argsort(distance, axis=1, kind="stable")
        take = np.arange(n)
        selected = samples[take, order[:, (sample_size - 1) // 2]]
        float_dist = np.remainder(view.pos[selected] - origin, 1.0)
        border = np.remainder(origin + float_dist, 1.0)
        border = np.where(border >= 1.0, 0.0, border)
        stop = (border == prev) | ~in_cw_arc(border, origin, prev)
        return border, stop

    def _select_borders_reference(
        self,
        view: LiveView,
        okey: np.ndarray,
        origin: np.ndarray,
        prev: np.ndarray,
        samples: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sequential twin of :meth:`_select_borders` (scalar keyspace ops).

        The per-row body is the shared protocol kernel
        :func:`repro.protocol.estimation.select_border` — the same exact
        rank-median-and-clamp a lockstep net member computes over its
        directory snapshot.
        """
        n, __ = samples.shape
        border = np.zeros(n, dtype=float)
        stop = np.zeros(n, dtype=bool)
        for i in range(n):
            rows = [int(s) for s in samples[i]]
            border[i], stop[i] = select_border(
                int(okey[i]),
                float(origin[i]),
                float(prev[i]),
                [int(view.keys[s]) for s in rows],
                [float(view.pos[s]) for s in rows],
            )
        return border, stop

    def _neighbor_matrix(self, view: LiveView) -> np.ndarray:
        """Shared padded neighbor-row matrix for the batched walkers.

        Row ``i``: geometric ring successor and predecessor (the
        pointers' steady state) followed by the peer's long links, dead
        targets dropped (a restricted walker refuses them anyway), in
        provider order — the same adjacency the scalar walker scans.
        """
        m = view.m
        state = view.state
        row_idx = np.arange(m, dtype=np.int64)
        succ = (row_idx + 1) % m
        pred = (row_idx - 1) % m
        succ_col = np.where(succ != row_idx, succ, -1)
        pred_col = np.where((pred != row_idx) & (pred != succ), pred, -1)
        width = state.link_width
        if width:
            link_rows = state.out_links[view.slots].astype(np.int64)
            have = np.arange(width) < state.out_count[view.slots][:, None]
            targets = np.where(have, link_rows, -1)
            safe = np.clip(targets, 0, view.row_of.size - 1)
            t_rows = np.where(
                (targets >= 0) & (targets < view.row_of.size), view.row_of[safe], -1
            )
            full = np.concatenate([succ_col[:, None], pred_col[:, None], t_rows], axis=1)
        else:
            full = np.stack([succ_col, pred_col], axis=1)
        # Stable left-compaction: valid entries keep provider order, the
        # -1 holes (self, dead targets) are pushed off the right edge —
        # the same rows the scalar list construction produced.
        order = np.argsort(full < 0, axis=1, kind="stable")
        matrix = np.take_along_axis(full, order, axis=1)
        keep = max(1, int((full >= 0).sum(axis=1).max(initial=0)))
        return matrix[:, :keep]

    def _arc_tables(
        self,
        origin: np.ndarray,
        far_end: np.ndarray,
        medians: np.ndarray,
        counts: np.ndarray,
    ) -> _ArcTables:
        """Pack per-peer partition arcs into padded matrices.

        Matches :meth:`PartitionTable.arc
        <repro.core.partitions.PartitionTable.arc>` exactly: partition
        ``p`` (0-indexed) ends at ``far_end`` (``p == 0``) or median
        ``p - 1``, starts at median ``p`` or the origin, and a
        non-outermost arc whose borders coincide is degenerate.
        """
        n = int(origin.size)
        kmax = int(counts.max(initial=0)) + 1
        starts = np.zeros((n, kmax), dtype=float)
        ends = np.zeros((n, kmax), dtype=float)
        valid = np.zeros((n, kmax), dtype=bool)
        for p in range(kmax):
            has = (counts + 1) > p
            end_col = far_end if p == 0 else medians[:, p - 1]
            if p < medians.shape[1]:
                start_col = np.where(counts > p, medians[:, p], origin)
            else:
                start_col = origin
            starts[:, p] = np.where(has, start_col, 0.0)
            ends[:, p] = np.where(has, end_col, 0.0)
            valid[:, p] = has & ~((start_col == end_col) & (p > 0))
        return _ArcTables(starts=starts, ends=ends, valid=valid, k_count=counts + 1)

    # ------------------------------------------------------------------
    # link acquisition (vectorized rounds)
    # ------------------------------------------------------------------

    def _acquire(
        self,
        rng: np.random.Generator,
        view: LiveView,
        rows: np.ndarray,
        arcs: _ArcTables,
        priority_of: np.ndarray,
    ) -> LinkAcquisitionStats:
        """Fill the outgoing slots of ``rows`` in vectorized rounds.

        Round semantics (identical in both execution paths): every peer
        with open slots and attempt budget issues one request — draw a
        partition, draw candidates, evaluate refusals and the
        power-of-two tiebreak against the round-*start* in-degree
        snapshot — and acknowledged requests commit in ascending
        priority, the first ``spare`` per candidate winning (argsort
        ranks in the vectorized path, an explicit priority-ordered loop
        in the reference). A failed attempt consumes one of the slot's
        ``link_retries + 1`` tries; exhausting them gives the peer's
        remaining slots up, exactly like the scalar per-slot loop.
        """
        config = self.overlay.config
        stats = LinkAcquisitionStats()
        m = view.m
        n = int(rows.size)
        if n == 0 or m < 2:
            return stats
        state = view.state
        req_slots = view.slots[rows]
        rho_in = state.cap_in[view.slots].astype(np.int64)
        in_deg = state.in_deg[view.slots].astype(np.int64)
        rho_out = state.cap_out[req_slots].astype(np.int64)
        target = rho_out if config.respect_out_caps else np.maximum(rho_out, 1)
        out_count = state.out_count[req_slots].astype(np.int64)
        n_cand = 2 if config.power_of_two else 1

        width = state.link_width
        if width:
            link_rows = state.out_links[req_slots].astype(np.int64)
            have = np.arange(width) < state.out_count[req_slots][:, None]
            targets = link_rows[have]
            requesters = np.broadcast_to(rows[:, None], link_rows.shape)[have]
            safe = np.minimum(targets, view.row_of.size - 1)
            t_rows = np.where(targets < view.row_of.size, view.row_of[safe], -1)
            known = t_rows >= 0
            pairs = requesters[known] * m + t_rows[known]
        else:
            pairs = np.empty(0, dtype=np.int64)
        linked = np.sort(pairs)
        linked_set = set(int(p) for p in pairs)

        slot_attempts = np.zeros(n, dtype=np.int64)
        active = out_count < target

        while True:
            act = np.nonzero(active)[0]
            if act.size == 0:
                break
            u_part = rng.random(act.size)
            u_cand = rng.random((act.size, n_cand))
            stats.draws += int(act.size)
            if self.vectorized:
                success, linked = self._round_vectorized(
                    view, rows, arcs, priority_of, act, u_part, u_cand,
                    rho_in, in_deg, out_count, linked, n_cand, stats,
                )
            else:
                success = self._round_reference(
                    view, rows, arcs, priority_of, act, u_part, u_cand,
                    rho_in, in_deg, out_count, linked_set, n_cand, stats,
                )
            fail = ~success
            slot_attempts[act[success]] = 0
            slot_attempts[act[fail]] += 1
            gave = fail & (slot_attempts[act] > config.link_retries)
            stats.slots_given_up += int(gave.sum())
            active[act[gave]] = False
            filled = success & (out_count[act] >= target[act])
            active[act[filled]] = False

        state.in_deg[view.slots] = in_deg
        return stats

    def _round_vectorized(
        self,
        view: LiveView,
        rows: np.ndarray,
        arcs: _ArcTables,
        priority_of: np.ndarray,
        act: np.ndarray,
        u_part: np.ndarray,
        u_cand: np.ndarray,
        rho_in: np.ndarray,
        in_deg: np.ndarray,
        out_count: np.ndarray,
        linked: np.ndarray,
        n_cand: int,
        stats: LinkAcquisitionStats,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One acquisition round as array kernels; returns
        ``(success mask over act, updated sorted link-pair table)``."""
        m = view.m
        pos = view.pos
        ids = view.ids
        snapshot = in_deg.copy()
        act_rows = rows[act]
        success = np.zeros(act.size, dtype=bool)

        pcol = (u_part * arcs.k_count[act]).astype(np.int64)
        okay = arcs.valid[act, pcol]
        start = arcs.starts[act, pcol]
        end = arcs.ends[act, pcol]
        lo = np.searchsorted(pos, start, side="right")
        hi = np.searchsorted(pos, end, side="right")
        count = np.where(start < end, hi - lo, np.where(start == end, m, m - lo + hi))
        count = np.where(okay, count, 0)
        drew = count > 0
        stats.empty_partition_draws += int((~drew).sum())

        offsets = (u_cand * count[:, None]).astype(np.int64)
        cand = (lo[:, None] + offsets) % m
        ack = np.zeros((act.size, n_cand), dtype=bool)
        for j in range(n_cand):
            c = cand[:, j]
            considered = drew if j == 0 else (drew & (cand[:, 1] != cand[:, 0]))
            eligible = (
                considered
                & (c != act_rows)
                & ~_isin_sorted(act_rows * m + c, linked)
            )
            acks = eligible & (snapshot[c] < rho_in[c])
            stats.refusals += int((eligible & ~acks).sum())
            ack[:, j] = acks

        if n_cand == 2:
            c0, c1 = cand[:, 0], cand[:, 1]
            d0, d1 = snapshot[c0], snapshot[c1]
            s0, s1 = d0 - rho_in[c0], d1 - rho_in[c1]
            i0, i1 = ids[c0], ids[c1]
            # Lexicographic (in-degree, -spare, id) — the scalar min() key.
            better1 = (d1 < d0) | (
                (d1 == d0) & ((s1 < s0) | ((s1 == s0) & (i1 < i0)))
            )
            use1 = ack[:, 1] & (~ack[:, 0] | better1)
            chosen = np.where(use1, c1, c0)
            has_choice = ack[:, 0] | ack[:, 1]
        else:
            chosen = cand[:, 0]
            has_choice = ack[:, 0]

        req = np.nonzero(has_choice)[0]
        if req.size:
            req_rows = act_rows[req]
            req_cand = chosen[req]
            order_idx = np.lexsort((priority_of[req_rows], req_cand))
            sorted_cand = req_cand[order_idx]
            seq = np.arange(sorted_cand.size, dtype=np.int64)
            group_head = np.empty(sorted_cand.size, dtype=bool)
            group_head[0] = True
            group_head[1:] = sorted_cand[1:] != sorted_cand[:-1]
            group_start = np.maximum.accumulate(np.where(group_head, seq, 0))
            rank = seq - group_start
            win = rank < (rho_in[sorted_cand] - snapshot[sorted_cand])
            winners = req[order_idx[win]]
            stats.conflicts += int(req.size - winners.size)
            if winners.size:
                win_rows = act_rows[winners]
                win_cand = chosen[winners]
                np.add.at(in_deg, win_cand, 1)
                out_count[act[winners]] += 1
                linked = np.sort(
                    np.concatenate([linked, win_rows * m + win_cand])
                )
                # Scatter commit: requester rows are unique within a round,
                # so the write column is just each winner's current count.
                state = view.state
                win_slots = view.slots[win_rows]
                write_col = state.out_count[win_slots].astype(np.int64)
                state.ensure_link_width(int(write_col.max()) + 1)
                state.out_links[win_slots, write_col] = ids[win_cand]
                state.out_count[win_slots] = write_col + 1
                stats.links_placed += int(winners.size)
                success[winners] = True
        return success, linked

    def _round_reference(
        self,
        view: LiveView,
        rows: np.ndarray,
        arcs: _ArcTables,
        priority_of: np.ndarray,
        act: np.ndarray,
        u_part: np.ndarray,
        u_cand: np.ndarray,
        rho_in: np.ndarray,
        in_deg: np.ndarray,
        out_count: np.ndarray,
        linked_set: set[int],
        n_cand: int,
        stats: LinkAcquisitionStats,
    ) -> np.ndarray:
        """One acquisition round replayed one request at a time.

        Identical semantics to :meth:`_round_vectorized` by explicit
        sequential execution: requests are processed in ascending
        priority; acknowledgment and the choice-of-two tiebreak read the
        round-start snapshot, the commit capacity check reads the live
        in-degree (so a candidate filled earlier in the round loses the
        race — a ``conflicts`` event).
        """
        m = view.m
        pos = view.pos
        ids = view.ids
        snapshot = in_deg.copy()
        success = np.zeros(act.size, dtype=bool)
        for a_i in np.argsort(priority_of[rows[act]], kind="stable"):
            r_row = int(rows[act[a_i]])
            k_count = int(arcs.k_count[act[a_i]])
            p = int(u_part[a_i] * k_count)
            if not arcs.valid[act[a_i], p]:
                stats.empty_partition_draws += 1
                continue
            start = float(arcs.starts[act[a_i], p])
            end = float(arcs.ends[act[a_i], p])
            lo, __, count = cw_arc_slice(pos, start, end)
            if count == 0:
                stats.empty_partition_draws += 1
                continue
            candidates: list[int] = []
            for j in range(n_cand):
                c = (lo + int(u_cand[a_i, j] * count)) % m
                if c not in candidates:
                    candidates.append(c)
            accepting: list[int] = []
            for c in candidates:
                if c == r_row or (r_row * m + c) in linked_set:
                    continue
                if accepts_link(int(snapshot[c]), int(rho_in[c])):
                    accepting.append(c)
                else:
                    stats.refusals += 1
            if not accepting:
                continue
            # Acknowledgment ranks on the round-start snapshot via the
            # shared protocol winner key; the commit below re-checks the
            # live in-degree (losing that race is a ``conflicts`` event).
            chosen = min(
                accepting,
                key=lambda c: link_winner_key(int(snapshot[c]), int(rho_in[c]), int(ids[c])),
            )
            if accepts_link(int(in_deg[chosen]), int(rho_in[chosen])):
                in_deg[chosen] += 1
                out_count[act[a_i]] += 1
                view.nodes[r_row].out_links.append(int(ids[chosen]))
                linked_set.add(r_row * m + chosen)
                stats.links_placed += 1
                success[a_i] = True
            else:
                stats.conflicts += 1
        return success
