"""A minimal discrete-event simulation kernel (simpy-flavoured).

The paper's evaluation is a growth simulation with periodic measurement;
the continuous-churn extension and several examples additionally need a
notion of simulated time with interleaved processes (joins, crashes,
repairs, queries). This kernel provides exactly the simpy subset the
library uses — environments, events, timeouts, generator-based processes
with interrupt support — with deterministic FIFO ordering for same-time
events so simulations are reproducible.

No external dependency is used (simpy is not available offline); the
semantics follow simpy closely so the code reads familiarly:

    env = Environment()

    def worker(env):
        yield env.timeout(5)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 5 and proc.value == "done"
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

from ..errors import SimulationError

__all__ = ["Environment", "Event", "Timeout", "Process", "Interrupt", "AllOf", "AnyOf"]

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    Life cycle: *pending* -> *triggered* (``succeed``/``fail`` called,
    scheduled on the queue) -> *processed* (callbacks ran).
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool = True

    @property
    def triggered(self) -> bool:
        """Whether the event already has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A failed event propagates its exception into every process that
        waits on it (unless the process catches it).
        """
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._value = exception
        self._ok = False
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._ok = True
        env._schedule(self, delay=delay)


class Process(Event):
    """A running generator; also an event that triggers on its return.

    The generator may ``yield`` any :class:`Event`; it is resumed with
    the event's value (or the exception thrown in, if the event failed
    or the process was interrupted).
    """

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        bootstrap = Event(env)
        bootstrap._value = None
        bootstrap._ok = True
        env._schedule(bootstrap)
        bootstrap.callbacks.append(self._resume)  # type: ignore[union-attr]

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not finished yet."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is waiting detaches it from the awaited event (the
        event itself is unaffected).
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        exc = Interrupt(cause)
        waited = self._waiting_on
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        poke = Event(self.env)
        poke._value = exc
        poke._ok = False
        poke._interrupt = True  # type: ignore[attr-defined]
        self.env._schedule(poke, priority=0)
        poke.callbacks.append(self._resume)  # type: ignore[union-attr]

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        try:
            if trigger._ok:
                target = self._generator.send(trigger._value)
            else:
                target = self._generator.throw(trigger._value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except Interrupt as exc:
            if not self.triggered:
                self.fail(exc)
            return
        except Exception as exc:
            if not self.triggered:
                self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.throw(
                SimulationError(f"processes may only yield events, got {target!r}")
            )
            return
        if target.processed:
            # Already-processed events resume the process immediately
            # (at the current time) via a fresh poke.
            poke = Event(self.env)
            poke._value = target._value
            poke._ok = target._ok
            self.env._schedule(poke)
            poke.callbacks.append(self._resume)  # type: ignore[union-attr]
        else:
            target.callbacks.append(self._resume)  # type: ignore[union-attr]
            self._waiting_on = target


class AllOf(Event):
    """Triggers when all child events have succeeded (value: list)."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            if child.processed:
                self._on_child(child)
            else:
                child.callbacks.append(self._on_child)  # type: ignore[union-attr]

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child._ok:
            self.fail(child._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Triggers when the first child event succeeds (value: that value)."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children = list(events)
        if not self._children:
            self.succeed(None)
            return
        for child in self._children:
            if child.processed:
                self._on_child(child)
                break
            child.callbacks.append(self._on_child)  # type: ignore[union-attr]

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child._ok:
            self.succeed(child._value)
        else:
            self.fail(child._value)


class Environment:
    """Scheduler and clock."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self.now = initial_time
        self._queue: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    # -- factories -----------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Wait for every event in ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Wait for the first of ``events``."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        heapq.heappush(self._queue, (self.now + delay, priority, next(self._counter), event))

    def step(self) -> None:
        """Process the single next event; raises on an empty queue."""
        if not self._queue:
            raise SimulationError("no more events scheduled")
        when, __, ___, event = heapq.heappop(self._queue)
        if when < self.now:
            raise SimulationError("event scheduled in the past (kernel bug)")
        self.now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if not event._ok and not callbacks and not getattr(event, "_defused", False):
            # A failed event nobody waited on: surface the error loudly
            # instead of dropping it (simpy behaves the same way).
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue empties, a deadline passes, or an event fires.

        * ``until=None`` — drain the queue;
        * ``until=<number>`` — advance the clock to that time;
        * ``until=<event>`` — run until the event is processed and return
          its value (raising if it failed).
        """
        if isinstance(until, Event):
            sentinel: list[Any] = []
            if until.processed:
                if not until._ok:
                    raise until._value
                return until._value
            until.callbacks.append(lambda ev: sentinel.append(ev))  # type: ignore[union-attr]
            setattr(until, "_defused", True)
            while not sentinel:
                if not self._queue:
                    raise SimulationError("queue drained before the awaited event fired")
                self.step()
            if not until._ok:
                raise until._value
            return until._value
        if until is not None:
            deadline = float(until)
            if deadline < self.now:
                raise SimulationError(f"cannot run backwards to {deadline} (now {self.now})")
            while self._queue and self._queue[0][0] <= deadline:
                self.step()
            self.now = deadline
            return None
        while self._queue:
            self.step()
        return None

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` when idle)."""
        return self._queue[0][0] if self._queue else float("inf")
