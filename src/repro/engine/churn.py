"""Steady-state churn: batched arrivals, departures, repair and probes.

The paper's Figure 2 injects one crash wave into a finished network; a
deployed overlay instead lives under *continuous* membership turnover —
peers arrive, serve a session, and vanish, while maintenance races the
decay. This module simulates that regime at the scales the batched
construction engine builds: :class:`SteadyStateChurnEngine` advances
any :class:`~repro.core.substrate.Substrate` through lock-step
**epochs**, each epoch being

1. **arrivals** — a Poisson cohort joins through the substrate's
   ``grow_batch`` (Oscar: the vectorized
   :class:`~repro.engine.construct.BatchConstructionEngine`; Chord /
   Mercury: their scalar fallbacks), each newcomer drawing a session
   length from a pluggable :class:`~repro.churn.sessions.SessionTimes`
   distribution (exponential, Pareto heavy-tail, or trace-driven from
   the synthetic Gnutella cascade);
2. **departures** — every peer whose session expired crashes in one
   bulk ``leave_batch`` wave, and ring pointers re-stabilize immediately
   (the paper's standing self-stabilization assumption) through the
   bulk :func:`~repro.ring.maintenance.repair_all` rebuild, while long
   links keep dangling;
3. **periodic repair** — every ``repair_every`` epochs the accumulated
   damage is actually fixed: long-dead peers are compacted out of the
   ring in one :meth:`Ring.remove_many
   <repro.ring.ring.Ring.remove_many>` pass (keeping long runs
   memory-bounded) and every live peer rewires through the batched
   construction path;
4. **probes** — a routed query batch through
   :class:`~repro.engine.batch.BatchQueryEngine` measures what users
   would see *right now*: the fault-aware router (and its probe costs)
   whenever crashed peers are present, the vectorized fault-free walk
   on a freshly repaired overlay.

Per-epoch outcomes land in :class:`ChurnEpochStats` — success rate,
mean cost, stale-link count, population size — the time series the
``steady-churn`` experiment plots.

Determinism contract
--------------------

Every random decision draws from a labelled stream derived from the
engine's ``seed`` (see :meth:`SteadyStateChurnEngine.run_epoch` for the
exact layout), and the draw layout is state-independent: both execution
paths consume each stream identically. ``vectorized=False`` replaces
every churn-side numpy kernel with its pure-Python twin — expiry
selection by loop, stale-link counting by set membership, scalar ring
repair, the construction engine's sequential reference, scalar probe
routing — and must produce **bit-identical** epoch statistics and final
overlay state; the test suite pins the equivalence property-style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..churn.sessions import SessionTimes
from ..degree import DegreeDistribution
from ..errors import ConfigError
from ..membership import MembershipView, OracleView
from ..routing import RouteStats
from ..rng import split
from ..workloads import KeyDistribution, QueryWorkload
from .batch import BatchQueryEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.substrate import Substrate
    from ..index.replication import ReplicatedStore

__all__ = ["ChurnEpochStats", "SteadyStateChurnEngine"]


@dataclass(frozen=True)
class ChurnEpochStats:
    """Everything observed in one steady-state churn epoch.

    Attributes:
        epoch: 1-based epoch index.
        arrivals: Peers that joined this epoch (the Poisson cohort).
        departures: Peers whose sessions expired and crashed this epoch.
        live: Live population at the end of the epoch.
        pointer_fixes: Ring pointer entries the post-wave stabilization
            had to add, change or drop.
        stale_links: Live-to-dead long links outstanding after the wave
            (before any periodic repair this epoch) — the damage the
            fault-aware router pays probes for.
        link_repair: Whether the periodic full repair ran this epoch.
        compacted: Dead peers removed from the ring by that repair
            (0 on non-repair epochs).
        probes: Routed probe-batch statistics
            (:class:`~repro.routing.RouteStats`): success rate and mean
            cost as seen by queries issued at this instant.
    """

    epoch: int
    arrivals: int
    departures: int
    live: int
    pointer_fixes: int
    stale_links: int
    link_repair: bool
    compacted: int
    probes: RouteStats

    def as_dict(self) -> dict[str, object]:
        """Flat JSON-ready view (used by benchmarks and the CLI)."""
        return {
            "epoch": self.epoch,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "live": self.live,
            "pointer_fixes": self.pointer_fixes,
            "stale_links": self.stale_links,
            "link_repair": self.link_repair,
            "compacted": self.compacted,
            "success_rate": self.probes.success_rate,
            "mean_cost": self.probes.mean_cost,
        }


class _ScalarQueryEngine(BatchQueryEngine):
    """A :class:`BatchQueryEngine` pinned to the scalar routing fallback
    — the reference path's probe backend (identical RNG consumption,
    identical statistics; the batched/scalar agreement is pinned by the
    engine's own test suite)."""

    def _vectorizable(self) -> bool:
        """Always route one query at a time."""
        return False


class SteadyStateChurnEngine:
    """Vectorized steady-state churn simulation over one substrate.

    Args:
        substrate: Any overlay satisfying the
            :class:`~repro.core.substrate.Substrate` protocol. Must hold
            at least one live peer (the engine assigns the initial
            population its sessions at construction).
        keys: Key distribution for arriving peers.
        degrees: Capacity-cap distribution for arriving peers (ignored
            by cap-less substrates, exactly like ``grow``).
        sessions: Session-time distribution
            (:mod:`repro.churn.sessions`); its median ``half_life``
            decides how fast the population turns over.
        arrival_rate: Expected arrivals per epoch (Poisson). The
            steady-state population is ``arrival_rate * sessions.mean``
            (Little's law); pass
            ``live_count / sessions.mean`` to hold the current size.
        repair_every: Periodic full repair cadence in epochs (1 = every
            epoch; damage never accumulates).
        n_probes: Routed probes per epoch (0 = one per live peer, the
            paper's N convention).
        seed: Root of every engine-labelled RNG stream.
        vectorized: ``True`` runs the numpy kernels; ``False`` the
            bit-identical pure-Python reference (see module docstring).
        workload: Probe target selection policy (default: uniform over
            live peers).
        membership: The :class:`~repro.membership.views.MembershipView`
            the engine reads liveness through. Default
            :class:`~repro.membership.views.OracleView` — omniscient,
            zero-lag, byte-for-byte the pre-redesign behavior. Install a
            :class:`~repro.membership.probe.ProbeView` and the engine
            instead *believes* its failure detectors: truth-dead peers
            keep their links counted, dodge compaction and poison
            routes until a probe quorum evicts them. The view must wrap
            this substrate's ring.
        replication: Optional
            :class:`~repro.index.replication.ReplicatedStore` over this
            substrate's ring. When installed, the periodic repair epoch
            also runs the store's re-replication pass against
            ``membership`` — so under a probe view, re-replication is
            driven by *eviction*, not ground truth, and detection lag
            shows up as data risk. The pass consumes no RNG, so
            attaching a store never shifts the engine's epoch
            statistics.

    Attributes:
        history: Every :class:`ChurnEpochStats` recorded so far.
        membership: The installed view (read detector metrics —
            ``detection_lags``, ``false_evictions`` — off it).
        replication: The installed store, or ``None`` (read data-risk
            metrics — ``items_lost_total``, ``history`` — off it).
    """

    def __init__(
        self,
        substrate: "Substrate",
        keys: KeyDistribution,
        degrees: DegreeDistribution,
        sessions: SessionTimes,
        arrival_rate: float,
        repair_every: int = 4,
        n_probes: int = 256,
        seed: int = 42,
        vectorized: bool = True,
        workload: QueryWorkload | None = None,
        membership: MembershipView | None = None,
        replication: "ReplicatedStore | None" = None,
    ) -> None:
        if not (arrival_rate >= 0.0 and np.isfinite(arrival_rate)):
            raise ConfigError(f"arrival_rate must be a finite float >= 0, got {arrival_rate}")
        if repair_every < 1:
            raise ConfigError(f"repair_every must be >= 1, got {repair_every}")
        if n_probes < 0:
            raise ConfigError(f"n_probes must be >= 0 (0 = one per live peer), got {n_probes}")
        if substrate.ring.live_count < 2:
            raise ConfigError("steady-state churn needs an overlay with >= 2 live peers")
        # Fail fast on substrates the engine cannot observe: beyond the
        # Substrate protocol it reads the per-peer link state (`nodes`
        # with ``out_links``, or Chord-style `fingers`) for stale-link
        # accounting and compaction, and the contiguous `_next_id` join
        # counter to identify each epoch's arrival cohort. A silently
        # unobservable substrate would report stale_links=0 forever and
        # leak state on compaction — better to refuse it here.
        if getattr(substrate, "nodes", None) is None and getattr(substrate, "fingers", None) is None:
            raise ConfigError(
                "substrate exposes neither 'nodes' (with out_links) nor 'fingers'; "
                "the churn engine cannot track its long links"
            )
        if not hasattr(substrate, "_next_id"):
            raise ConfigError(
                "substrate has no '_next_id' join counter; the churn engine "
                "cannot identify arrival cohorts"
            )
        if membership is None:
            membership = OracleView(substrate.ring)
        elif membership.ring is not substrate.ring:
            raise ConfigError(
                "membership view wraps a different ring than the substrate; "
                "construct it over substrate.ring"
            )
        if replication is not None and replication.ring is not substrate.ring:
            raise ConfigError(
                "replicated store wraps a different ring than the substrate; "
                "construct it over substrate.ring"
            )
        self.membership = membership
        self.replication = replication
        self.substrate = substrate
        self.keys = keys
        self.degrees = degrees
        self.sessions = sessions
        self.arrival_rate = float(arrival_rate)
        self.repair_every = int(repair_every)
        self.n_probes = int(n_probes)
        self.seed = int(seed)
        self.vectorized = bool(vectorized)
        self.workload = workload if workload is not None else QueryWorkload()
        self.history: list[ChurnEpochStats] = []
        self._epoch = 0
        engine_cls = BatchQueryEngine if self.vectorized else _ScalarQueryEngine
        self._query_engine = engine_cls(substrate)
        # The initial population's sessions, clocked from time 0 — one
        # bulk draw on its own labelled stream.
        ids = substrate.ring.ids_array(live_only=True)
        lengths = self.sessions.sample(split(self.seed, "steady-sessions-init"), int(ids.size))
        self._session_ids = ids.astype(np.int64, copy=True)
        self._departs = np.asarray(lengths, dtype=float)

    @property
    def epoch(self) -> int:
        """Number of epochs run so far (the current simulation time)."""
        return self._epoch

    # ------------------------------------------------------------------
    # the epoch loop
    # ------------------------------------------------------------------

    def run(self, epochs: int) -> list[ChurnEpochStats]:
        """Advance ``epochs`` lock-step epochs; returns their statistics.

        Purely cumulative: ``run(3)`` then ``run(2)`` is identical to
        one ``run(5)`` — every epoch draws from streams labelled by its
        absolute index, never from a shared cursor.
        """
        if epochs < 0:
            raise ConfigError(f"epochs must be >= 0, got {epochs}")
        return [self.run_epoch() for __ in range(epochs)]

    def run_epoch(self) -> ChurnEpochStats:
        """Advance one epoch: arrivals, departures, repair, probes.

        RNG-stream layout (all derived from the engine ``seed``; ``e``
        is the 1-based epoch index):

        * ``("steady-arrivals", e)`` — one Poisson draw for the cohort
          size;
        * ``("steady-sessions", e)`` — one bulk session-length draw for
          the cohort;
        * ``("steady-detect", e)`` — the membership view's probe and
          gossip rounds (:class:`~repro.membership.probe.ProbeView`
          only; derived from the *view's* seed, and the oracle consumes
          nothing — installing a view never shifts the engine streams);
        * ``("steady-repair", e)`` — rewiring randomness of a periodic
          repair landing on this epoch;
        * ``("steady-probes", e)`` — the probe workload;
        * the substrate's own join stream is consumed by ``grow_batch``
          (state-dependent, but both execution paths consume it
          identically — the construction engine's own contract).

        The layout is state-independent: every stream is consumed the
        same way whatever individual peers decide, which is what keeps
        the vectorized and reference paths bit-identical.
        """
        self._epoch += 1
        e = self._epoch
        arrivals = self._arrive(e)
        departures, pointer_fixes = self._depart(e)
        evicted = self.membership.advance(e)
        if evicted:
            # A false eviction ground-truth kills a session holder; its
            # session must not expire a second time later.
            gone = np.isin(self._session_ids, np.asarray(evicted, dtype=np.int64))
            self._session_ids = self._session_ids[~gone]
            self._departs = self._departs[~gone]
        stale = self._count_stale_links()
        repair_due = (e % self.repair_every) == 0
        compacted = self._repair_links(e) if repair_due else 0
        if repair_due and self.replication is not None:
            # Re-replication rides the repair epoch and acts on the same
            # *believed* membership the link repair just used; it draws
            # no randomness, so the engine's streams are untouched.
            self.replication.rereplicate(self.membership, e)
        probes = self._probe(e)
        stats = ChurnEpochStats(
            epoch=e,
            arrivals=arrivals,
            departures=departures,
            live=self.substrate.ring.live_count,
            pointer_fixes=pointer_fixes,
            stale_links=stale,
            link_repair=repair_due,
            compacted=compacted,
            probes=probes,
        )
        self.history.append(stats)
        return stats

    # ------------------------------------------------------------------
    # epoch phases
    # ------------------------------------------------------------------

    def _arrive(self, e: int) -> int:
        """Join this epoch's Poisson cohort; returns its size.

        One count draw plus one bulk session draw, both on epoch-``e``
        labelled streams; the join itself goes through the substrate's
        ``grow_batch`` with the engine's execution path threaded in, so
        an Oscar cohort estimates partitions and acquires links as one
        lock-step batch.
        """
        ring = self.substrate.ring
        count = int(split(self.seed, "steady-arrivals", e).poisson(self.arrival_rate))
        lengths = self.sessions.sample(split(self.seed, "steady-sessions", e), count)
        if count == 0:
            return 0
        before = int(self.substrate._next_id)
        self.substrate.grow_batch(
            ring.live_count + count, self.keys, self.degrees, vectorized=self.vectorized
        )
        new_ids = np.arange(before, int(self.substrate._next_id), dtype=np.int64)
        self._session_ids = np.concatenate([self._session_ids, new_ids])
        self._departs = np.concatenate(
            [self._departs, float(e) + np.asarray(lengths, dtype=float)]
        )
        return count

    def _depart(self, e: int) -> tuple[int, int]:
        """Crash every expired session; returns ``(departures, fixes)``.

        Expiry is "session end at or before time ``e``". At least one
        peer always survives (a fully dead overlay has nothing left to
        measure): when every session expired at once, the longest-lived
        peer (ties to the higher id) is reprieved and keeps its slot in
        the table. The wave lands as one bulk ``leave_batch`` (ring
        pointers re-stabilized once, long links left dangling); the
        reference path crashes one peer at a time and runs the scalar
        repair instead — identical end state.
        """
        if self.vectorized:
            expired_mask = self._departs <= float(e)
            expired = self._session_ids[expired_mask]
        else:
            expired = np.asarray(
                [
                    int(node_id)
                    for node_id, depart in zip(self._session_ids, self._departs)
                    if float(depart) <= float(e)
                ],
                dtype=np.int64,
            )
        if expired.size == 0:
            return 0, 0
        if expired.size >= self.substrate.ring.live_count:
            keep = self._longest_lived(expired)
            expired = expired[expired != keep]
            if expired.size == 0:
                return 0, 0
        if self.vectorized:
            fixes = int(self.substrate.leave_batch([int(i) for i in expired], repair=True))
        else:
            for node_id in expired:
                self.substrate.ring.mark_dead(int(node_id))
            fixes = int(self.substrate.repair_ring())
        gone = np.isin(self._session_ids, expired)
        self._session_ids = self._session_ids[~gone]
        self._departs = self._departs[~gone]
        self.membership.record_deaths([int(i) for i in expired], e)
        return int(expired.size), fixes

    def _longest_lived(self, expired: np.ndarray) -> int:
        """The reprieved peer of a total-expiry wave: maximal
        ``(departure time, id)`` — deterministic on both paths."""
        order = np.isin(self._session_ids, expired)
        ids = self._session_ids[order]
        departs = self._departs[order]
        best = int(np.lexsort((ids, departs))[-1])
        return int(ids[best])

    def _repair_links(self, e: int) -> int:
        """Periodic full repair: compact the dead, rewire the living.

        Long-dead peers leave the ring for good in one bulk
        ``remove_many`` pass (their per-substrate state dropped with
        them), then every live peer rebuilds its long links through the
        substrate's batched rewiring on the ``("steady-repair", e)``
        stream. Returns how many peers were compacted away.
        """
        ring = self.substrate.ring
        all_ids = ring.ids_array(live_only=False)
        live_ids = self.membership.live_ids()
        dead = np.setdiff1d(all_ids, live_ids, assume_unique=True)
        if dead.size:
            # Only *believed*-dead peers are compacted: under a probe
            # view a crashed-but-undetected peer keeps its ring slot
            # (and keeps poisoning routes) until evicted. The view
            # drops its per-peer detector state first — ring slots get
            # recycled, and a recycled slot must not inherit counters.
            self.membership.forget([int(i) for i in dead])
            self._drop_state(dead)
            ring.remove_many([int(i) for i in dead])
        if ring.live_count >= 2:
            self.substrate.rewire_batch(
                split(self.seed, "steady-repair", e), vectorized=self.vectorized
            )
        else:
            # A lone survivor has nothing to rewire to; its long links
            # all referenced compacted peers and must still be dropped.
            self._clear_links(ring.ids_array(live_only=True))
        return int(dead.size)

    def _clear_links(self, live_ids: np.ndarray) -> None:
        """Drop every long link of the given live peers (the degenerate
        repair when the population collapsed below two peers)."""
        nodes = getattr(self.substrate, "nodes", None)
        fingers = getattr(self.substrate, "fingers", None)
        for node_id in live_ids:
            if nodes is not None:
                node = nodes[int(node_id)]  # repro: allow[SOA001] dict-substrate fallback
                node.reset_links()  # repro: allow[SOA001]
                node.in_degree = 0  # repro: allow[SOA001]
            elif fingers is not None:
                fingers[int(node_id)] = []

    def _drop_state(self, dead: np.ndarray) -> None:
        """Delete per-substrate node state for compacted peers (Oscar /
        Mercury ``nodes``, Chord ``fingers`` + ``application_key``)."""
        nodes = getattr(self.substrate, "nodes", None)
        if nodes is not None:
            for node_id in dead:
                nodes.pop(int(node_id), None)  # repro: allow[SOA001] dict-substrate fallback
        fingers = getattr(self.substrate, "fingers", None)
        if fingers is not None:
            for node_id in dead:
                fingers.pop(int(node_id), None)
        application_key = getattr(self.substrate, "application_key", None)
        if application_key is not None:
            for node_id in dead:
                application_key.pop(int(node_id), None)

    def _probe(self, e: int) -> RouteStats:
        """Route this epoch's probe batch; returns its statistics.

        Fault-aware routing (scalar by nature — per-probe backtracking
        state) whenever crashed peers are present; the vectorized
        fault-free walk on a clean overlay. Both go through the one
        :class:`~repro.engine.batch.BatchQueryEngine` API on the
        ``("steady-probes", e)`` stream, so the probe count and targets
        are identical across paths.
        """
        ring = self.substrate.ring
        faulty = len(ring) > ring.live_count
        count = None if self.n_probes == 0 else self.n_probes
        return self._query_engine.measure(
            split(self.seed, "steady-probes", e),
            n_queries=count,
            workload=self.workload,
            faulty=faulty,
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def _count_stale_links(self) -> int:
        """Believed-live-to-believed-dead long links outstanding now.

        Long links are the substrate's sampled links (Oscar / Mercury
        ``out_links``) or deterministic fingers (Chord); ring pointers
        never count (they are re-stabilized every epoch). Liveness is
        whatever :attr:`membership` believes: under the oracle this is
        exactly the old truth-based count, under a probe view a link to
        a crashed-but-undetected peer is *not* yet stale — the gap
        between this number and the probe failures in :meth:`_probe` is
        the detection lag made visible. The vectorized kernel batches
        membership over one concatenated target array; the reference
        twin walks a set — identical counts.
        """
        ring = self.substrate.ring
        live_ids = self.membership.live_ids()
        state = getattr(self.substrate, "state", None)
        if self.vectorized and state is not None and getattr(ring, "state", None) is state:
            # Struct-of-arrays fast path: every live peer's link row at
            # once, no per-node list materialization.
            slots = self.membership.live_slots()
            width = state.link_width
            if width == 0 or slots.size == 0:
                return 0
            links = state.out_links[slots]
            have = np.arange(width) < state.out_count[slots][:, None]
            flat = links[have].astype(np.int64)
            if flat.size == 0:
                return 0
            live_sorted = np.sort(live_ids)  # ring order is by position, not id
            idx = np.minimum(np.searchsorted(live_sorted, flat), live_sorted.size - 1)
            return int((live_sorted[idx] != flat).sum())
        targets = self._long_link_targets(live_ids)
        if not targets:
            return 0
        if self.vectorized:
            nonempty = [np.asarray(links, dtype=np.int64) for links in targets if links]
            if not nonempty:
                return 0
            flat = np.concatenate(nonempty)
            live_sorted = np.sort(live_ids)  # ring order is by position, not id
            idx = np.minimum(np.searchsorted(live_sorted, flat), live_sorted.size - 1)
            return int((live_sorted[idx] != flat).sum())
        live_set = {int(i) for i in live_ids}
        return sum(1 for links in targets for target in links if int(target) not in live_set)

    def _long_link_targets(self, live_ids: np.ndarray) -> list[Sequence[int]]:
        """Per-live-peer long-link target lists, in ring order."""
        nodes = getattr(self.substrate, "nodes", None)
        if nodes is not None:
            return [nodes[int(i)].out_links for i in live_ids]
        fingers = getattr(self.substrate, "fingers", None)
        if fingers is not None:
            return [fingers[int(i)] for i in live_ids]
        return []
