"""Exception hierarchy for the Oscar reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the precise failure mode.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "EmptyPopulationError",
    "UnknownNodeError",
    "DuplicateNodeError",
    "DeadNodeError",
    "RingInvariantError",
    "RoutingError",
    "RoutingBudgetExceeded",
    "SamplingError",
    "InsufficientSamplesError",
    "PartitionError",
    "LinkAcquisitionError",
    "CapacityExhaustedError",
    "DistributionError",
    "SimulationError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigError(ReproError, ValueError):
    """A configuration value is missing, inconsistent or out of range."""


class EmptyPopulationError(ReproError, ValueError):
    """An operation required at least one (live) peer but none exist."""


class UnknownNodeError(ReproError, KeyError):
    """A node id was referenced that is not part of the overlay."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.node_id = node_id

    def __str__(self) -> str:  # KeyError quotes its argument; be clearer.
        return f"unknown node id: {self.node_id}"


class DuplicateNodeError(ReproError, ValueError):
    """A node id or ring position was inserted twice."""


class DeadNodeError(ReproError, RuntimeError):
    """An operation was attempted on (or from) a crashed peer."""

    def __init__(self, node_id: int, operation: str = "operation") -> None:
        super().__init__(f"{operation} attempted on dead node {node_id}")
        self.node_id = node_id
        self.operation = operation


class RingInvariantError(ReproError, RuntimeError):
    """The ring's successor/predecessor structure is inconsistent."""


class RoutingError(ReproError, RuntimeError):
    """Greedy routing could not make progress or deliver a message."""


class RoutingBudgetExceeded(RoutingError):
    """A route exceeded its hop/message budget before delivery.

    Carries the partial cost so experiments can account for abandoned
    queries instead of silently dropping them.
    """

    def __init__(self, budget: int, cost: int) -> None:
        super().__init__(f"routing budget of {budget} messages exceeded (spent {cost})")
        self.budget = budget
        self.cost = cost


class SamplingError(ReproError, RuntimeError):
    """A sampling procedure (random walk, median estimation) failed."""


class InsufficientSamplesError(SamplingError):
    """Fewer samples were gathered than the estimator requires."""

    def __init__(self, needed: int, got: int) -> None:
        super().__init__(f"estimator needs >= {needed} samples, got {got}")
        self.needed = needed
        self.got = got


class PartitionError(ReproError, RuntimeError):
    """Logarithmic partitioning produced an invalid partition table."""


class LinkAcquisitionError(ReproError, RuntimeError):
    """A peer failed to acquire a mandatory long-range link."""


class CapacityExhaustedError(LinkAcquisitionError):
    """Every candidate neighbor refused a link (in-degree caps reached)."""


class DistributionError(ReproError, ValueError):
    """A key or degree distribution was constructed with invalid parameters."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event engine or a simulation process misbehaved."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment harness was invoked with an unusable configuration."""
