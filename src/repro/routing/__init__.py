"""Routing: greedy clockwise lookup and its fault-aware variant.

* :func:`route_greedy` — fault-free Chord-style greedy routing;
* :func:`route_faulty` — dead-link probing + backtracking (paper §3,
  churn experiments);
* :class:`RouteResult` / :func:`summarize_routes` — per-query and
  aggregate cost accounting (the paper's "average search cost").
"""

from .base import NeighborProvider
from .faulty import route_faulty
from .greedy import route_greedy
from .range_query import RangeQueryResult, route_range
from .result import RouteResult, RouteStats, summarize_routes

__all__ = [
    "NeighborProvider",
    "RangeQueryResult",
    "RouteResult",
    "RouteStats",
    "route_faulty",
    "route_greedy",
    "route_range",
    "summarize_routes",
]
