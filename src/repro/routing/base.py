"""Shared routing abstractions.

Routing operates against two narrow interfaces so the same router serves
the Oscar overlay, the Mercury baseline and synthetic test topologies:

* a :class:`~repro.ring.Ring` for positions/liveness/responsibility, and
* a :class:`NeighborProvider` for each node's outgoing links (ring
  successor + long-range links, in greedy-preference order or not — the
  router sorts).
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from ..types import NodeId

__all__ = ["NeighborProvider"]


@runtime_checkable
class NeighborProvider(Protocol):
    """Read access to a node's outgoing neighbor set.

    Implementations must return *all* outgoing links (ring + long-range),
    including links that currently point at dead peers — discovering
    those is the fault-aware router's job, and charging for it is the
    point of the churn experiments.
    """

    def neighbors_of(self, node_id: NodeId) -> Sequence[NodeId]:
        """Outgoing neighbor ids of ``node_id`` (order irrelevant)."""
        ...
