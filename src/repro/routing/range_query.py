"""Range queries: the "non-exact" lookups Oscar exists to support.

The paper positions Oscar among overlays that "support complex
non-uniform key distribution and hence non-exact queries (e.g. range or
similarity queries)". Over a ring-ordered key space a range query is the
classic two-phase walk:

1. greedy-route to the peer responsible for the range start
   (``successor(lo)``), paying the usual logarithmic search cost;
2. sweep ring successors until the peer's position passes the range end,
   paying one hop per peer whose arc intersects the range.

Cost is therefore ``O(log-ish + |peers in range|)`` — and because Oscar
keeps per-peer *key-space* responsibility aligned with storage budgets,
skew shows up as more peers (not more data per peer) in hot ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import RoutingConfig
from ..ring import Ring, RingPointers, in_cw_interval
from ..types import Key, NodeId
from .base import NeighborProvider
from .faulty import route_faulty
from .greedy import route_greedy
from .result import RouteResult

__all__ = ["RangeQueryResult", "route_range"]

_DEFAULT = RoutingConfig()


@dataclass(frozen=True)
class RangeQueryResult:
    """Outcome of one range query.

    Attributes:
        source: Originating peer.
        lo: Range start (inclusive, as a point on the circle).
        hi: Range end (inclusive); ``lo > hi`` wraps through 1.0.
        entry_route: The greedy route to ``successor(lo)``.
        owners: Every live peer whose arc intersects the range, in ring
            order starting at the entry peer.
        sweep_hops: Ring hops spent in phase two.
    """

    source: NodeId
    lo: Key
    hi: Key
    entry_route: RouteResult
    owners: tuple[NodeId, ...]
    sweep_hops: int

    @property
    def total_cost(self) -> int:
        """Messages: entry search cost + successor sweep."""
        return self.entry_route.cost + self.sweep_hops

    @property
    def success(self) -> bool:
        """Whether the entry phase delivered (sweep cannot fail on a
        repaired ring)."""
        return self.entry_route.success


def route_range(
    ring: Ring,
    pointers: RingPointers,
    neighbors: NeighborProvider,
    source: NodeId,
    lo: Key,
    hi: Key,
    config: RoutingConfig = _DEFAULT,
    faulty: bool = False,
) -> RangeQueryResult:
    """Resolve every live owner of keys in ``[lo, hi]``.

    ``lo > hi`` is the wrapped range through 1.0. The entry lookup uses
    the fault-aware router when ``faulty=True``; the sweep walks ring
    successor pointers (always live after repair).

    The owner set starts at the entry peer (``successor(lo)``, which
    owns ``lo``) and sweeps ring successors up to and including
    ``successor(hi)``, the peer owning the range's tail slice — every
    key in ``[lo, hi]`` is owned by exactly one peer in the set.
    ``lo == hi`` is the point range (a single owner), not the whole
    circle.
    """
    router = route_faulty if faulty else route_greedy
    entry = router(ring, pointers, neighbors, source, lo, config)
    if not entry.success or entry.delivered_to is None:
        return RangeQueryResult(
            source=source, lo=lo, hi=hi, entry_route=entry, owners=(), sweep_hops=0
        )

    owners: list[NodeId] = [entry.delivered_to]
    sweep_hops = 0
    current = entry.delivered_to
    # Sweep successor pointers while the current owner sits in the
    # half-open clockwise range ``[lo, hi)`` — decided with comparisons
    # only (exact), so wrapped ranges, ranges ending past the last peer,
    # and owners a sub-rounding step before ``hi`` all terminate
    # correctly; the `in owners` guard terminates degenerate
    # (single-peer) rings.
    while _owner_arc_continues(ring.position(current), lo, hi):
        nxt = pointers.successor.get(current)
        if nxt is None or nxt == current or nxt in owners:
            break
        owners.append(nxt)
        sweep_hops += 1
        current = nxt
    return RangeQueryResult(
        source=source,
        lo=lo,
        hi=hi,
        entry_route=entry,
        owners=tuple(owners),
        sweep_hops=sweep_hops,
    )


def _owner_arc_continues(position: float, lo: float, hi: float) -> bool:
    """Whether a swept owner at ``position`` still ends before the range
    end — i.e. ``position`` is in clockwise ``[lo, hi)``, exactly.

    ``lo == hi`` is the point range: the entry peer alone owns it, so
    the sweep never continues.
    """
    if lo == hi or position == hi:
        return False
    return position == lo or in_cw_interval(position, lo, hi)
