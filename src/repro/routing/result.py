"""Route outcomes and their aggregation into experiment statistics.

The paper's performance metric is the *average search cost*: the mean
number of messages induced by N random queries, where messages include
forward hops and — under churn — wasted probes to dead neighbors and
backtracking steps. :class:`RouteResult` accounts for each component
separately so the fault-free and faulty experiments share one metric
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Iterable, Sequence

from ..types import Key, NodeId

__all__ = ["RouteResult", "RouteStats", "summarize_routes"]


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing one query.

    Attributes:
        source: Originating peer.
        target_key: The key being looked up.
        responsible: The peer that owns ``target_key`` (ground truth).
        delivered_to: Peer the route actually terminated at (equals
            ``responsible`` on success).
        success: Whether the query reached the responsible peer within
            budget.
        hops: Forward hops taken (path length - 1, counting backtracked
            segments once per traversal).
        wasted_probes: Messages spent discovering dead neighbors.
        backtracks: Messages spent returning to a previous hop.
        path: The sequence of live peers visited, in order (first element
            is ``source``).
    """

    source: NodeId
    target_key: Key
    responsible: NodeId
    delivered_to: NodeId | None
    success: bool
    hops: int
    wasted_probes: int = 0
    backtracks: int = 0
    path: tuple[NodeId, ...] = ()

    @property
    def cost(self) -> int:
        """Total messages charged to this query (the paper's search cost)."""
        return self.hops + self.wasted_probes + self.backtracks

    @property
    def wasted(self) -> int:
        """Total non-productive messages (probes + backtracks)."""
        return self.wasted_probes + self.backtracks


@dataclass(frozen=True)
class RouteStats:
    """Aggregate statistics over a batch of routes."""

    n_routes: int
    n_success: int
    mean_cost: float
    mean_hops: float
    mean_wasted: float
    max_cost: int
    p95_cost: float

    @property
    def success_rate(self) -> float:
        """Fraction of queries delivered to the responsible peer."""
        return self.n_success / self.n_routes if self.n_routes else 0.0


def _percentile(sorted_values: Sequence[int], q: float) -> float:
    """Nearest-rank percentile of pre-sorted values (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return float(sorted_values[rank])


def summarize_routes(routes: Iterable[RouteResult]) -> RouteStats:
    """Fold a batch of :class:`RouteResult` into :class:`RouteStats`.

    Failed routes are *included* in the cost averages (their partial cost
    was really spent) — matching a deployed system where an abandoned
    query still consumed bandwidth.
    """
    batch = list(routes)
    if not batch:
        return RouteStats(0, 0, 0.0, 0.0, 0.0, 0, 0.0)
    costs = sorted(r.cost for r in batch)
    return RouteStats(
        n_routes=len(batch),
        n_success=sum(1 for r in batch if r.success),
        mean_cost=mean(r.cost for r in batch),
        mean_hops=mean(r.hops for r in batch),
        mean_wasted=mean(r.wasted for r in batch),
        max_cost=costs[-1],
        p95_cost=_percentile(costs, 0.95),
    )
