"""Fault-free greedy clockwise routing (Chord orientation).

A query for key ``k`` starting at peer ``s`` repeatedly forwards to the
neighbor that makes the most clockwise progress toward ``k`` without
passing it (Chord's *closest preceding node* rule), and delivers on the
final ring hop to ``successor(k)``, the peer responsible for ``k``.

Because every hop strictly decreases the remaining clockwise distance and
the final interval check uses the always-live ring successor, the walk
terminates in at most ``N`` hops; in an Oscar network the expected cost is
``O(log^2 N / rho)`` for per-peer out-degree ``rho`` (Kleinberg's bound
applied to rank space — see :mod:`repro.smallworld.theory`).

Exactness: the router historically *measured* clockwise progress with
subtractive float arithmetic, which rounds — a candidate a denormal step
past the key could measure exactly the target distance and be admitted,
breaking the "never pass the key" invariant the termination proof needs
(the float-boundary bug class). Both greedy decisions are really
*order* questions, so they are now decided with comparisons only —
:func:`~repro.ring.identifiers.in_cw_interval` for "does this neighbor
pass the key" and :func:`cw_closer` for "which neighbor is farther" —
which are exact at full float resolution. The batched engine
(:mod:`repro.engine.batch`) evaluates the equivalent rules as exact
``uint64`` keyspace kernels; the two agree bit-for-bit whenever peer
positions occupy distinct ``2**-64`` key cells (always, for real
workloads — and property-tested).
"""

from __future__ import annotations

from ..config import RoutingConfig
from ..errors import RoutingError
from ..protocol.decisions import closest_preceding, cw_closer
from ..ring import Ring, RingPointers, in_cw_interval
from ..types import Key, NodeId
from .base import NeighborProvider
from .result import RouteResult

__all__ = ["route_greedy", "cw_closer"]  # cw_closer: canonical home repro.protocol.decisions

_DEFAULT = RoutingConfig()


def route_greedy(
    ring: Ring,
    pointers: RingPointers,
    neighbors: NeighborProvider,
    source: NodeId,
    target_key: Key,
    config: RoutingConfig = _DEFAULT,
    record_path: bool = False,
) -> RouteResult:
    """Route one query in a fault-free network.

    Args:
        ring: Ground-truth membership (used for positions and for the
            ground-truth responsible peer).
        pointers: Maintained ring successor pointers (the mandatory ring
            links every peer holds).
        neighbors: Outgoing long-range/ring links per peer.
        source: Originating peer id; must be live.
        target_key: Key in ``[0, 1)`` being looked up.
        config: Message budget (exceeding it raises — in a fault-free
            network that indicates a broken topology, not bad luck).
        record_path: Keep the full visited path on the result (slower;
            off for bulk measurements).

    Returns:
        A successful :class:`RouteResult`; ``wasted_probes`` and
        ``backtracks`` are always zero here.

    Raises:
        RoutingError: No neighbor made progress (topology violates the
            ring invariant) or the budget was exhausted.
    """
    responsible = ring.successor_of_key(target_key, live_only=True)
    current = source
    hops = 0
    path: list[NodeId] = [source] if record_path else []

    while current != responsible:
        if hops >= config.budget:
            raise RoutingError(
                f"fault-free route from {source} to key {target_key!r} exceeded budget {config.budget}"
            )
        current_pos = ring.position(current)
        succ = pointers.successor.get(current)
        if succ is None:
            raise RoutingError(f"node {current} has no ring successor pointer")
        # Final-interval rule: the key lives between me and my successor.
        if in_cw_interval(target_key, current_pos, ring.position(succ)):
            current = succ
        else:
            current = _closest_preceding(ring, neighbors, current, current_pos, target_key, succ)
        hops += 1
        if record_path:
            path.append(current)

    return RouteResult(
        source=source,
        target_key=target_key,
        responsible=responsible,
        delivered_to=current,
        success=True,
        hops=hops,
        path=tuple(path),
    )


def _closest_preceding(
    ring: Ring,
    neighbors: NeighborProvider,
    current: NodeId,
    current_pos: float,
    target_key: Key,
    ring_successor: NodeId,
) -> NodeId:
    """The neighbor making maximal clockwise progress without passing the key.

    The ring successor is always a valid fallback (it cannot pass the key —
    the caller already handled the final interval), so in a consistent
    topology this never fails. The selection rule itself lives in
    :func:`repro.protocol.decisions.closest_preceding`, shared with the
    message-passing runtime's per-hop router.
    """
    best, best_pos = closest_preceding(
        current,
        current_pos,
        target_key,
        ring_successor,
        ring.position(ring_successor),
        ((candidate, ring.position(candidate)) for candidate in neighbors.neighbors_of(current)),
    )
    if best == current or best_pos == current_pos:
        raise RoutingError(f"node {current} has no progressing neighbor toward {target_key!r}")
    return best
