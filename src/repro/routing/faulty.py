"""Fault-aware greedy routing with probe accounting and backtracking.

This is the modified router of the paper's churn experiments ("we have
modified the greedy routing algorithm ... by introducing a backtracking
mechanism in case the algorithm arrives to a peer with 'dead' links.
However, the possibility to backtrack incurs some 'wasted' traffic").

Model
-----

* Crashed peers remain addressable (links still point at them); learning
  that a neighbor is dead costs one timed-out probe message, charged once
  per route (the originator caches discoveries along the path).
* At each live peer the route tries candidates best-first (largest
  clockwise progress that does not pass the key); the ring successor is
  naturally the last improving fallback.
* If a peer has no remaining untried live candidate, the route backtracks
  to the previous peer (one message) and resumes with its next-best
  candidate — a depth-first search whose visited set guarantees
  termination.
* Candidates positioned *past* the key are tried last (closest-after-key
  first): they are delivery attempts for the case where the proper ring
  successor is dead and pointers were not repaired.

With ring repair enabled (the paper's assumption) backtracking is rare —
the live ring successor always makes progress — and the elevated search
cost under churn comes from wasted probes; without repair the
backtracking machinery carries the route.
"""

from __future__ import annotations

from ..config import RoutingConfig
from ..errors import DeadNodeError
from ..ring import Ring, RingPointers, in_cw_interval
from ..types import Key, NodeId
from .base import NeighborProvider
from .result import RouteResult

__all__ = ["route_faulty"]

_DEFAULT = RoutingConfig()


def route_faulty(
    ring: Ring,
    pointers: RingPointers,
    neighbors: NeighborProvider,
    source: NodeId,
    target_key: Key,
    config: RoutingConfig = _DEFAULT,
    record_path: bool = False,
) -> RouteResult:
    """Route one query in a network with crashed peers.

    Returns a :class:`RouteResult` whose ``cost`` includes forward hops,
    wasted probes and backtrack messages; ``success`` is ``False`` when
    the budget ran out or the depth-first search exhausted every path
    (possible only in heavily damaged, unrepaired topologies).

    Raises:
        DeadNodeError: ``source`` itself is dead — queries originate only
            at live peers.
    """
    if not ring.is_alive(source):
        raise DeadNodeError(source, "route_faulty")
    responsible = ring.successor_of_key(target_key, live_only=True)

    hops = 0
    probes = 0
    backtracks = 0
    known_dead: set[NodeId] = set()
    visited: set[NodeId] = {source}
    path: list[NodeId] = [source] if record_path else []

    def make_result(delivered: NodeId | None, success: bool) -> RouteResult:
        return RouteResult(
            source=source,
            target_key=target_key,
            responsible=responsible,
            delivered_to=delivered,
            success=success,
            hops=hops,
            wasted_probes=probes,
            backtracks=backtracks,
            path=tuple(path),
        )

    if source == responsible:
        return make_result(source, True)

    stack: list[tuple[NodeId, "list[NodeId]", int]] = []
    stack.append((source, _candidates(ring, pointers, neighbors, source, target_key), 0))

    while stack:
        node, cands, cursor = stack[-1]
        advanced = False
        while cursor < len(cands):
            candidate = cands[cursor]
            cursor += 1
            stack[-1] = (node, cands, cursor)
            if candidate in visited:
                continue
            if hops + probes + backtracks >= config.budget:
                return make_result(None, False)
            if not ring.is_alive(candidate):
                if candidate not in known_dead:
                    known_dead.add(candidate)
                    probes += config.probe_cost
                continue
            hops += 1
            visited.add(candidate)
            if record_path:
                path.append(candidate)
            if candidate == responsible:
                return make_result(candidate, True)
            stack.append(
                (candidate, _candidates(ring, pointers, neighbors, candidate, target_key), 0)
            )
            advanced = True
            break
        if not advanced:
            stack.pop()
            if stack:
                backtracks += config.backtrack_cost
                if hops + probes + backtracks >= config.budget:
                    return make_result(None, False)

    return make_result(None, False)


def _candidates(
    ring: Ring,
    pointers: RingPointers,
    neighbors: NeighborProvider,
    node: NodeId,
    target_key: Key,
) -> list[NodeId]:
    """Candidate next hops from ``node``, in greedy-preference order.

    Three tiers (deduplicated, ``node`` itself excluded):

    1. if the key falls between ``node`` and its ring successor pointer,
       that successor — the delivery hop — comes absolutely first;
    2. improving links (clockwise progress <= distance to the key),
       largest progress first;
    3. links already past the key, closest-after-the-key first
       (last-resort delivery attempts when the ring is unrepaired).

    Progress and "past the key" are decided with comparisons only
    (:func:`~repro.ring.identifiers.in_cw_interval` and the clockwise
    rank order of :func:`~repro.routing.greedy.cw_closer`) — exact at
    full float resolution, so the preference order cannot be scrambled
    by subtractive rounding at arc boundaries. Exact order cannot tie on
    distinct positions, so no id tie-break is needed.
    """
    node_pos = ring.position(node)
    succ = pointers.successor.get(node)

    seen: set[NodeId] = {node}
    improving: list[tuple[tuple[bool, float], NodeId]] = []
    past: list[tuple[tuple[bool, float], NodeId]] = []
    head: list[NodeId] = []

    if succ is not None and succ != node:
        seen.add(succ)
        succ_pos = ring.position(succ)
        if in_cw_interval(target_key, node_pos, succ_pos):
            head.append(succ)
        else:
            improving.append((_cw_rank(node_pos, succ_pos), succ))

    for link in neighbors.neighbors_of(node):
        if link in seen:
            continue
        seen.add(link)
        link_pos = ring.position(link)
        if link_pos == node_pos:
            continue
        # Zero-span guard: with the key exactly at `node`, nothing can
        # improve ("(node, node]" would read as the whole circle).
        if target_key != node_pos and in_cw_interval(link_pos, node_pos, target_key):
            improving.append((_cw_rank(node_pos, link_pos), link))
        else:
            past.append((_cw_rank(target_key, link_pos), link))

    improving.sort(key=lambda item: item[0], reverse=True)
    past.sort(key=lambda item: item[0])
    return head + [n for __, n in improving] + [n for __, n in past]


def _cw_rank(origin: float, position: float) -> tuple[bool, float]:
    """A sort key realizing exact clockwise-from-``origin`` order:
    positions at/after the origin first (ascending), wrapped positions
    after (ascending) — the total order :func:`cw_closer` compares by."""
    return (position < origin, position)
