"""Skewed serving workloads: Zipf popularity and flash crowds.

:class:`~repro.workloads.queries.QueryWorkload` models the *paper's*
measurement — every peer equally likely to be looked up. A serving data
plane never sees that: request popularity is Zipf-skewed (a handful of
hot items dominate) and occasionally pathological — a **flash crowd**
concentrates a traffic spike on one key region, right while the ring
churns underneath. This module draws requests against a fixed *item
catalog* (the keys a :class:`~repro.index.replication.ReplicatedStore`
holds), which is what makes cache hit rates meaningful: the same hot
keys recur request after request.

* :class:`ServingWorkload` — item ranks drawn from a truncated Zipf
  law over the catalog (``P(rank r) ∝ 1 / r**exponent``), via one
  precomputed CDF and a ``searchsorted`` per batch;
* :class:`FlashCrowdSchedule` — during ``[start, stop)`` epochs, a
  fraction of requests is redirected onto the catalog items whose keys
  fall in one circle arc (the crowd's target region).

Determinism contract: one :meth:`ServingWorkload.generate_arrays` call
consumes its RNG in a fixed layout — sources, rank uniforms, then (on
every call, active window or not) the flash redirect draws — so request
streams are reproducible per ``(catalog, RNG state, count, epoch)`` and
identical across execution paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExperimentError

__all__ = ["FlashCrowdSchedule", "ServingWorkload"]


@dataclass(frozen=True)
class FlashCrowdSchedule:
    """A traffic spike on one key region during an epoch window.

    Args:
        start: First epoch (inclusive) of the crowd.
        stop: First epoch after the crowd (exclusive; ``stop <= start``
            disables it).
        fraction: Fraction of requests redirected onto the hot region
            while active.
        center: Center of the hot arc on the unit circle.
        span: Arc width; the region is ``[center - span/2,
            center + span/2)`` (wrapping).
    """

    start: int
    stop: int
    fraction: float = 0.8
    center: float = 0.5
    span: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ExperimentError(f"fraction must be in [0, 1], got {self.fraction}")
        if not 0.0 < self.span <= 1.0:
            raise ExperimentError(f"span must be in (0, 1], got {self.span}")
        if not 0.0 <= self.center < 1.0:
            raise ExperimentError(f"center must be in [0, 1), got {self.center}")

    def active(self, epoch: int) -> bool:
        """Whether the crowd is live at ``epoch``."""
        return self.start <= epoch < self.stop

    def region_mask(self, keys: np.ndarray) -> np.ndarray:
        """Element-wise membership of ``keys`` in the hot arc
        (wrapping)."""
        lo = (self.center - self.span / 2.0) % 1.0
        offset = (np.asarray(keys, dtype=float) - lo) % 1.0
        return offset < self.span


@dataclass(frozen=True)
class ServingWorkload:
    """Zipf-popular requests over a fixed item catalog.

    Item ranks follow a truncated Zipf law: the catalog is ranked in
    key order and ``P(rank r) ∝ 1 / (r + 1)**exponent``. ``exponent=0``
    degenerates to uniform-over-catalog; web serving traces sit around
    0.7–1.2.

    Args:
        exponent: Zipf skew (``>= 0``).
        flash: Optional :class:`FlashCrowdSchedule`; while active, a
            fraction of requests is redirected to uniformly chosen
            catalog items inside the hot region (falling back to the
            Zipf draw when the region holds no items).
    """

    exponent: float = 0.9
    flash: FlashCrowdSchedule | None = None

    def __post_init__(self) -> None:
        if not (self.exponent >= 0.0 and np.isfinite(self.exponent)):
            raise ExperimentError(f"exponent must be a finite float >= 0, got {self.exponent}")

    def rank_cdf(self, n_items: int) -> np.ndarray:
        """The truncated-Zipf CDF over ``n_items`` ranks (precompute
        once per catalog; pure function of ``(n_items, exponent)``)."""
        if n_items < 1:
            raise ExperimentError(f"catalog must hold >= 1 item, got {n_items}")
        weights = 1.0 / np.power(np.arange(1, n_items + 1, dtype=float), self.exponent)
        cdf = np.cumsum(weights)
        return cdf / cdf[-1]

    def generate_arrays(
        self,
        source_pool: np.ndarray,
        item_keys: np.ndarray,
        rng: np.random.Generator,
        count: int,
        epoch: int = 0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` requests as aligned ``(sources, target_keys)``.

        Args:
            source_pool: Node ids requests may originate from (callers
                pass the believed-live ∩ truth-live population).
            item_keys: The catalog's item keys, ascending (a
                :class:`~repro.index.replication.ReplicatedStore`'s
                ``item_keys``).
            rng: Request randomness (one labelled stream per batch).
            count: Requests to draw.
            epoch: Current epoch — decides whether the flash crowd is
                active. A static parameter, not RNG-dependent: the draw
                layout is identical on every path.

        RNG layout (fixed, state-independent): source indices, rank
        uniforms, then — whenever a flash schedule is configured —
        redirect uniforms and region picks, drawn on every call so the
        stream alignment does not depend on the window.
        """
        if count < 0:
            raise ExperimentError(f"count must be >= 0, got {count}")
        source_pool = np.asarray(source_pool, dtype=np.int64)
        item_keys = np.asarray(item_keys, dtype=float)
        if source_pool.size == 0:
            raise ExperimentError("cannot generate requests: empty source pool")
        if item_keys.size == 0:
            raise ExperimentError("cannot generate requests: empty item catalog")
        sources = source_pool[rng.integers(0, source_pool.size, size=count)]
        cdf = self.rank_cdf(int(item_keys.size))
        ranks = np.searchsorted(cdf, rng.random(count), side="right")
        targets = item_keys[np.minimum(ranks, item_keys.size - 1)]
        if self.flash is not None:
            redirect = rng.random(count) < self.flash.fraction
            picks = rng.integers(0, max(1, item_keys.size), size=count)
            if self.flash.active(epoch):
                region = self.flash.region_mask(item_keys)
                hot = np.nonzero(region)[0]
                if hot.size:
                    chosen = item_keys[hot[picks % hot.size]]
                    targets = np.where(redirect, chosen, targets)
        return sources, np.asarray(targets, dtype=float)
