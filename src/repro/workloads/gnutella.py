"""A synthetic stand-in for the Gnutella filename key distribution.

The paper draws peer keys "from the Gnutella filename distribution" — a
proprietary trace we cannot ship. What Oscar (and Mercury's failure)
actually depend on is not the trace itself but its *structure*: filename
populations mapped order-preservingly onto a key space are skewed at
every resolution — zoom into any sub-range and the sub-distribution is
about as lopsided as the whole, because popular prefixes nest inside
popular prefixes ("the*", "the beatles*", ...).

A **multiplicative cascade** (binary multifractal measure) has exactly
this self-similar skew and is the standard synthetic model for it: split
the circle recursively ``depth`` times; at every split send a random
fraction ``W ~ Beta(alpha, alpha)`` of the mass left and ``1 - W``
right. Small ``alpha`` gives heavy skew. The resulting leaf-mass vector
defines a distribution that

* defeats *uniform-resolution* learners (equi-width histograms): most
  mass concentrates in a few buckets at any fixed granularity, while
* remains perfectly learnable by *recursive-median* probing, which is
  the core claim the Oscar experiments exercise.

The cascade is materialized once (2^depth leaf masses, ~128 KiB at the
default depth 14), giving exact vectorized sampling and an exact CDF.
"""

from __future__ import annotations

import numpy as np

from ..errors import DistributionError
from ..rng import split
from .base import KeyDistribution

__all__ = ["GnutellaLikeDistribution"]


class GnutellaLikeDistribution(KeyDistribution):
    """Multiplicative-cascade key distribution (Gnutella substitute).

    Args:
        depth: Cascade depth; the circle is divided into ``2**depth``
            leaf intervals. 14 gives 16384 leaves — far below any
            experiment's population spacing, so discreteness is invisible.
        alpha: Beta(alpha, alpha) split parameter. Lower = more skew;
            ``alpha -> inf`` degenerates to uniform. The default 1.2
            produces a spacing Gini coefficient around 0.91 — heavily
            skewed at every resolution, comparable to filename-population
            skews, while keeping a nonzero density everywhere.
        layout_seed: Seed fixing the cascade (the "trace identity") —
            independent of experiment seeds, so all experiments share one
            fixed landscape exactly like they would share one trace.
    """

    name = "gnutella"

    def __init__(self, depth: int = 14, alpha: float = 1.2, layout_seed: int = 2007) -> None:
        if not 1 <= depth <= 24:
            raise DistributionError(f"depth must be in [1, 24], got {depth}")
        if alpha <= 0.0:
            raise DistributionError(f"alpha must be > 0, got {alpha}")
        self.depth = depth
        self.alpha = alpha
        layout = split(layout_seed, "gnutella-cascade", depth)
        masses = np.ones(1, dtype=float)
        for level in range(depth):
            w = layout.beta(alpha, alpha, size=masses.size)
            # Guard against exact 0/1 splits which would create unreachable
            # (zero-mass) regions of the key space.
            w = np.clip(w, 1e-9, 1.0 - 1e-9)
            masses = np.column_stack((masses * w, masses * (1.0 - w))).reshape(-1)
            del level
        self._leaf_mass = masses / masses.sum()
        self._cumulative = np.concatenate(([0.0], np.cumsum(self._leaf_mass)))
        self._cumulative[-1] = 1.0
        self._n_leaves = masses.size

    @property
    def n_leaves(self) -> int:
        """Number of leaf intervals (``2**depth``)."""
        return self._n_leaves

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        mass = rng.random(size)
        leaves = np.searchsorted(self._cumulative, mass, side="right") - 1
        leaves = np.clip(leaves, 0, self._n_leaves - 1)
        keys = (leaves + rng.random(size)) / self._n_leaves
        return self._validate_batch(keys)

    def cdf(self, key: float) -> float:
        if not 0.0 <= key <= 1.0:
            raise DistributionError(f"key must be in [0, 1], got {key!r}")
        scaled = key * self._n_leaves
        leaf = min(self._n_leaves - 1, int(scaled))
        frac = scaled - leaf
        lo = self._cumulative[leaf]
        hi = self._cumulative[leaf + 1]
        return float(lo + (hi - lo) * frac)

    def bucket_mass(self, buckets: int) -> np.ndarray:
        """Total key mass per equi-width bucket.

        Reporting/diagnostic helper: shows how badly a fixed-resolution
        histogram (Mercury's view of the world) misrepresents the
        cascade — typically a handful of buckets hold nearly all mass.
        """
        if buckets < 1:
            raise DistributionError(f"buckets must be >= 1, got {buckets}")
        edges = np.linspace(0.0, 1.0, buckets + 1)
        cdf_at = np.array([self.cdf(edge) for edge in edges])
        return np.diff(cdf_at)
