"""Standard key distributions: uniform, clustered, Zipf-vocabulary.

These cover the homogeneity spectrum between "what DHTs assume" (uniform
hashed keys) and "what data-oriented applications produce" (clustered,
heavy-tailed key populations), and serve as controls in the experiments:
Oscar must match plain DHT behaviour on uniform keys and keep working as
skew grows.
"""

from __future__ import annotations

import numpy as np

from ..errors import DistributionError
from ..rng import split
from .base import KeyDistribution

__all__ = ["UniformKeys", "ClusteredKeys", "ZipfKeys"]


class UniformKeys(KeyDistribution):
    """Uniform keys — the classical hashed-identifier assumption."""

    name = "uniform"

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self._validate_batch(rng.random(size))

    def cdf(self, key: float) -> float:
        if not 0.0 <= key <= 1.0:
            raise DistributionError(f"key must be in [0, 1], got {key!r}")
        return key


class ClusteredKeys(KeyDistribution):
    """A mixture of wrapped Gaussian clusters.

    Models applications whose keys pile up around a few hot regions
    (e.g. popular attribute values in a range-queriable index). Cluster
    centers, widths and weights are drawn once from ``layout_seed`` so a
    distribution object denotes one fixed, reproducible landscape.

    Args:
        n_clusters: Number of Gaussian bumps.
        width: Common scale of cluster standard deviations; individual
            widths vary by up to 4x around it.
        layout_seed: Seed fixing the landscape (independent from the
            experiment seed that drives sampling).
    """

    name = "clustered"

    def __init__(self, n_clusters: int = 5, width: float = 0.02, layout_seed: int = 2007) -> None:
        if n_clusters < 1:
            raise DistributionError(f"n_clusters must be >= 1, got {n_clusters}")
        if not 0.0 < width < 0.5:
            raise DistributionError(f"width must be in (0, 0.5), got {width}")
        layout = split(layout_seed, "clustered-layout")
        self.n_clusters = n_clusters
        self.centers = layout.random(n_clusters)
        self.widths = width * (0.25 + 3.75 * layout.random(n_clusters))
        raw = layout.random(n_clusters) + 0.25
        self.weights = raw / raw.sum()

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        which = rng.choice(self.n_clusters, size=size, p=self.weights)
        keys = self.centers[which] + rng.normal(0.0, 1.0, size) * self.widths[which]
        return self._validate_batch(keys % 1.0)


class ZipfKeys(KeyDistribution):
    """Zipf-weighted vocabulary keys.

    A vocabulary of ``vocabulary`` tokens is laid out in shuffled order
    over equal-width slots of the circle; token ``r`` (by popularity
    rank) is drawn with probability proportional to ``1 / r**exponent``
    and the key is then uniform within the token's slot. This yields the
    staircase-shaped CDF typical of term/filename populations.

    Args:
        vocabulary: Number of tokens (slots).
        exponent: Zipf exponent; larger = more skew.
        layout_seed: Seed fixing the token-to-slot shuffle.
    """

    name = "zipf"

    def __init__(self, vocabulary: int = 512, exponent: float = 1.0, layout_seed: int = 2007) -> None:
        if vocabulary < 2:
            raise DistributionError(f"vocabulary must be >= 2, got {vocabulary}")
        if exponent <= 0.0:
            raise DistributionError(f"exponent must be > 0, got {exponent}")
        self.vocabulary = vocabulary
        self.exponent = exponent
        weights = 1.0 / np.arange(1, vocabulary + 1, dtype=float) ** exponent
        layout = split(layout_seed, "zipf-layout")
        slots = np.arange(vocabulary)
        layout.shuffle(slots)
        self._slot_of_token = slots
        self._probabilities = weights / weights.sum()
        # Per-slot mass, then CDF over slot space for the analytic cdf().
        slot_mass = np.zeros(vocabulary)
        slot_mass[slots] = self._probabilities
        self._slot_cdf = np.concatenate(([0.0], np.cumsum(slot_mass)))
        self._slot_cdf[-1] = 1.0

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        tokens = rng.choice(self.vocabulary, size=size, p=self._probabilities)
        slots = self._slot_of_token[tokens]
        keys = (slots + rng.random(size)) / self.vocabulary
        return self._validate_batch(keys)

    def cdf(self, key: float) -> float:
        if not 0.0 <= key <= 1.0:
            raise DistributionError(f"key must be in [0, 1], got {key!r}")
        scaled = key * self.vocabulary
        slot = min(self.vocabulary - 1, int(scaled))
        frac = scaled - slot
        lo = self._slot_cdf[slot]
        hi = self._slot_cdf[slot + 1]
        return float(lo + (hi - lo) * frac)
