"""Key-distribution interface.

A *key distribution* models where peer identifiers (equivalently: data
keys, since peers take the key of the data they store) fall on the unit
circle. Implementations provide vectorized sampling and, where the
analytic form is known, an exact CDF used by tests and by the reporting
layer to visualize skew.
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import DistributionError

__all__ = ["KeyDistribution"]


class KeyDistribution(abc.ABC):
    """Abstract base class for distributions over ``[0, 1)``."""

    #: Short machine-readable name used in CSV output and CLI flags.
    name: str = "abstract"

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` keys as a float array with values in ``[0, 1)``."""

    def cdf(self, key: float) -> float:
        """Exact CDF where known; default raises.

        Subclasses with closed-form or materialized CDFs override this.
        """
        raise NotImplementedError(f"{type(self).__name__} has no analytic cdf")

    def quantile(self, mass: float, tolerance: float = 1e-12) -> float:
        """Inverse CDF by bisection (requires :meth:`cdf`)."""
        if not 0.0 <= mass <= 1.0:
            raise DistributionError(f"mass must be in [0, 1], got {mass!r}")
        lo, hi = 0.0, 1.0
        while hi - lo > tolerance:
            mid = (lo + hi) / 2.0
            if self.cdf(mid) < mass:
                lo = mid
            else:
                hi = mid
        return lo

    def skew_gini(self, rng: np.random.Generator, probe: int = 4096) -> float:
        """Gini coefficient of sampled key spacing — 0 for uniform keys,
        approaching 1 for extreme concentration. A quick scalar summary
        of "how hard" this distribution is for uniform-resolution
        learners; used in reports and sanity tests.
        """
        keys = np.sort(self.sample(rng, probe))
        gaps = np.diff(np.concatenate((keys, keys[:1] + 1.0)))
        gaps.sort()
        n = gaps.size
        index = np.arange(1, n + 1, dtype=float)
        total = gaps.sum()
        if total <= 0.0:
            return 0.0
        return float((2.0 * (index * gaps).sum() / (n * total)) - (n + 1.0) / n)

    @staticmethod
    def _validate_batch(keys: np.ndarray) -> np.ndarray:
        """Clamp float-rounding strays and assert range (defense in depth)."""
        out = np.asarray(keys, dtype=float)
        out[out >= 1.0] -= 1.0
        out[out < 0.0] += 1.0
        if out.size and ((out < 0.0).any() or (out >= 1.0).any()):
            raise DistributionError("sampled keys escaped [0, 1)")
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
