"""Query workload generation.

The paper measures "the average search cost ... induced by N random
queries in the network". Query targets can be drawn three ways, and the
choice matters under skew:

* ``peer`` (default, matches the paper): the target is the position of a
  uniformly chosen live peer — every peer is equally likely to be looked
  up, regardless of how keys cluster;
* ``key``: the target key is drawn from a key distribution (models
  *data-access* skew: hot key regions attract proportionally more
  queries);
* ``uniform``: the target key is uniform on the circle (stresses the
  sparse regions that hold little data).

Sources are always uniformly random live peers, distinct from the
trivial case where source already owns the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Literal

import numpy as np

from ..errors import EmptyPopulationError, ExperimentError
from ..ring import Ring
from ..types import Key, NodeId
from .base import KeyDistribution

__all__ = ["Query", "QueryWorkload"]


@dataclass(frozen=True)
class Query:
    """One lookup: ``source`` asks for ``target_key``."""

    source: NodeId
    target_key: Key


@dataclass(frozen=True)
class QueryWorkload:
    """A reproducible stream of random queries.

    Args:
        target_mode: ``"peer"``, ``"key"`` or ``"uniform"`` (see module
            docstring).
        key_distribution: Required iff ``target_mode == "key"``.
    """

    target_mode: Literal["peer", "key", "uniform"] = "peer"
    key_distribution: KeyDistribution | None = None

    def __post_init__(self) -> None:
        if self.target_mode not in ("peer", "key", "uniform"):
            raise ExperimentError(f"unknown target_mode {self.target_mode!r}")
        if self.target_mode == "key" and self.key_distribution is None:
            raise ExperimentError('target_mode="key" requires a key_distribution')

    def generate_arrays(
        self, ring: Ring, rng: np.random.Generator, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` queries as aligned ``(sources, target_keys)`` arrays.

        This is the array-native entry point used by the batch query
        engine; :meth:`generate` wraps it, so both paths consume the RNG
        identically — the same ``(ring, rng state, count)`` always yields
        the same queries whether they are routed one at a time or in
        bulk.
        """
        if count < 0:
            raise ExperimentError(f"count must be >= 0, got {count}")
        live = ring.ids_array(live_only=True)
        if live.size == 0:
            raise EmptyPopulationError("cannot generate queries: no live peers")
        sources = live[rng.integers(0, live.size, size=count)]
        if self.target_mode == "peer":
            targets = np.array(
                [ring.position(int(t)) for t in live[rng.integers(0, live.size, size=count)]]
            )
        elif self.target_mode == "key":
            assert self.key_distribution is not None  # enforced in __post_init__
            targets = self.key_distribution.sample(rng, count)
        else:
            targets = rng.random(count)
        return sources.astype(np.int64, copy=False), np.asarray(targets, dtype=float)

    def generate(self, ring: Ring, rng: np.random.Generator, count: int) -> Iterator[Query]:
        """Yield ``count`` queries against the current live population."""
        sources, targets = self.generate_arrays(ring, rng, count)
        for source, target in zip(sources, targets):
            yield Query(source=int(source), target_key=float(target))
