"""Key and query workloads.

Distributions over the key circle (:class:`UniformKeys`,
:class:`ClusteredKeys`, :class:`ZipfKeys`, and the Gnutella-trace
substitute :class:`GnutellaLikeDistribution`) plus the random-query
generator used by every experiment and the skewed serving workloads
(:class:`ServingWorkload` Zipf popularity, :class:`FlashCrowdSchedule`
hot-region spikes) the data plane is load-tested with.
"""

from .base import KeyDistribution
from .gnutella import GnutellaLikeDistribution
from .queries import Query, QueryWorkload
from .serving import FlashCrowdSchedule, ServingWorkload
from .standard import ClusteredKeys, UniformKeys, ZipfKeys

__all__ = [
    "ClusteredKeys",
    "FlashCrowdSchedule",
    "GnutellaLikeDistribution",
    "KeyDistribution",
    "Query",
    "QueryWorkload",
    "ServingWorkload",
    "UniformKeys",
    "ZipfKeys",
]


def by_name(name: str, **kwargs: object) -> KeyDistribution:
    """Construct a key distribution from its CLI name.

    Recognized names: ``uniform``, ``clustered``, ``zipf``, ``gnutella``.
    """
    registry = {
        "uniform": UniformKeys,
        "clustered": ClusteredKeys,
        "zipf": ZipfKeys,
        "gnutella": GnutellaLikeDistribution,
    }
    try:
        factory = registry[name]
    except KeyError:
        raise ValueError(f"unknown key distribution {name!r}; known: {sorted(registry)}") from None
    return factory(**kwargs)  # type: ignore[arg-type]
