"""Degree-capacity distribution interface.

A *degree distribution* models each peer's self-imposed connection
budget: ``rho_max_in`` (incoming long links it will accept) and
``rho_max_out`` (outgoing long links it will try to hold). Peers pick
these from local bandwidth/storage constraints — the heterogeneity axis
of the paper's experiments.
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import DistributionError

__all__ = ["DegreeDistribution", "assign_caps"]


class DegreeDistribution(abc.ABC):
    """Abstract base class for integer degree-cap distributions."""

    #: Short machine-readable name used in CSV output and CLI flags.
    name: str = "abstract"

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` caps as an integer array (each >= 1)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Analytic mean cap (experiments keep this at 27, per the paper)."""

    def support(self) -> tuple[int, int]:
        """Inclusive (min, max) degree values the distribution can emit."""
        raise NotImplementedError(f"{type(self).__name__} has no declared support")

    @staticmethod
    def _validate_batch(caps: np.ndarray) -> np.ndarray:
        out = np.asarray(caps)
        if out.size and out.min() < 1:
            raise DistributionError("degree caps must all be >= 1")
        return out.astype(np.int64)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, mean={self.mean():.2f})"


def assign_caps(
    distribution: DegreeDistribution,
    rng: np.random.Generator,
    size: int,
    paired: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``(rho_max_in, rho_max_out)`` caps for ``size`` peers.

    With ``paired=True`` (default) one draw per peer sets both caps — a
    peer's in/out budgets stem from the same bandwidth class, and the
    paper keeps the in/out means identical. ``paired=False`` draws the
    two caps independently (an ablation knob).
    """
    if size < 0:
        raise DistributionError(f"size must be >= 0, got {size}")
    caps_in = distribution.sample(rng, size)
    caps_out = caps_in.copy() if paired else distribution.sample(rng, size)
    return caps_in, caps_out
