"""The paper's constant and "stepped" degree-cap distributions.

* constant: every peer caps at exactly 27 links (the homogeneous
  control);
* stepped: caps drawn uniformly from {19, 23, 27, 39} — note the values
  average to 27, so all three experimental cases share the same total
  degree "volume" and differ only in how it is spread.
"""

from __future__ import annotations

import numpy as np

from ..errors import DistributionError
from .base import DegreeDistribution

__all__ = ["ConstantDegrees", "SteppedDegrees"]

#: The paper's cap value shared by all peers in the constant case.
PAPER_CONSTANT_CAP = 27

#: The paper's four-step cap menu (mean 27).
PAPER_STEPPED_CAPS = (19, 23, 27, 39)


class ConstantDegrees(DegreeDistribution):
    """Every peer has the same cap (paper default: 27)."""

    name = "constant"

    def __init__(self, cap: int = PAPER_CONSTANT_CAP) -> None:
        if cap < 1:
            raise DistributionError(f"cap must be >= 1, got {cap}")
        self.cap = cap

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        del rng  # deterministic; signature kept uniform
        if size < 0:
            raise DistributionError(f"size must be >= 0, got {size}")
        return self._validate_batch(np.full(size, self.cap, dtype=np.int64))

    def mean(self) -> float:
        return float(self.cap)

    def support(self) -> tuple[int, int]:
        return (self.cap, self.cap)


class SteppedDegrees(DegreeDistribution):
    """Caps drawn uniformly from a small menu (paper: {19, 23, 27, 39})."""

    name = "stepped"

    def __init__(self, steps: tuple[int, ...] = PAPER_STEPPED_CAPS) -> None:
        if not steps:
            raise DistributionError("steps must not be empty")
        if any(s < 1 for s in steps):
            raise DistributionError(f"all steps must be >= 1, got {steps}")
        self.steps = tuple(int(s) for s in steps)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise DistributionError(f"size must be >= 0, got {size}")
        menu = np.asarray(self.steps, dtype=np.int64)
        return self._validate_batch(menu[rng.integers(0, menu.size, size=size)])

    def mean(self) -> float:
        return float(np.mean(self.steps))

    def support(self) -> tuple[int, int]:
        return (min(self.steps), max(self.steps))
