"""Degree-capacity models: the paper's three heterogeneity cases.

* :class:`ConstantDegrees` — everyone caps at 27;
* :class:`SpikyDegreeDistribution` — the "realistic" measured-P2P
  emulation (Fig 1a);
* :class:`SteppedDegrees` — uniform over {19, 23, 27, 39};

all three share mean 27 so experiments compare like with like.
:func:`assign_caps` turns a distribution into per-peer
``(rho_max_in, rho_max_out)`` arrays.
"""

from .base import DegreeDistribution, assign_caps
from .spiky import SpikyDegreeDistribution
from .standard import ConstantDegrees, SteppedDegrees

__all__ = [
    "ConstantDegrees",
    "DegreeDistribution",
    "SpikyDegreeDistribution",
    "SteppedDegrees",
    "assign_caps",
    "by_name",
]


def by_name(name: str, **kwargs: object) -> DegreeDistribution:
    """Construct a degree distribution from its CLI name.

    Recognized names: ``constant``, ``stepped``, ``realistic``.
    """
    registry = {
        "constant": ConstantDegrees,
        "stepped": SteppedDegrees,
        "realistic": SpikyDegreeDistribution,
    }
    try:
        factory = registry[name]
    except KeyError:
        raise ValueError(f"unknown degree distribution {name!r}; known: {sorted(registry)}") from None
    return factory(**kwargs)  # type: ignore[arg-type]
