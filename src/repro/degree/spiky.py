"""The "realistic" synthetic spiky degree distribution (paper Fig 1a).

Measurement studies of deployed unstructured P2P networks (Stutzbach,
Rejaie & Sen, IMC'05 — the paper's [12]) find node-degree distributions
that are neither constant nor clean power laws: strong *spikes* at the
default neighbor-count settings of popular client software, riding on a
heavy-tailed body of custom configurations. The paper emulates this with
"a synthetic spiky distribution" whose mean is scaled to 27 links;
Figure 1(a) plots its pmf on log-log axes (degrees 1..~10^2,
probabilities ~1e-5..1e-1).

We reproduce the same construction:

* point-mass spikes at common client defaults carrying ``spike_fraction``
  of the probability (defaults dominate in the measured data), plus
* a truncated power-law body ``P(d) ∝ d**-gamma`` on ``[d_min, d_max]``
  for the peers running custom budgets,

with the body exponent ``gamma`` solved by bisection so the overall mean
hits ``mean_degree`` exactly (the mean is strictly decreasing in
``gamma``, so the root is unique when it exists).
"""

from __future__ import annotations

import numpy as np

from ..errors import DistributionError
from .base import DegreeDistribution

__all__ = ["SpikyDegreeDistribution"]

#: Spike locations modeled on common client default neighbor caps.
DEFAULT_SPIKES = (8, 16, 24, 32, 50, 64)


class SpikyDegreeDistribution(DegreeDistribution):
    """Client-default spikes + truncated power-law body, exact mean.

    Args:
        mean_degree: Target mean cap (paper: 27).
        spike_fraction: Probability mass carried by the spikes.
        d_min: Smallest cap of the power-law body.
        d_max: Largest representable cap (body tail end).
        spikes: Spike locations (client default values).
        spike_decay: Spike weight decays as ``rank**-spike_decay`` over
            the sorted spike list (smaller defaults are more common).

    Raises:
        DistributionError: No body exponent can realize the target mean
            given the other parameters (the body mean ranges over
            roughly ``(d_min, (d_min + d_max) / 2)`` as ``gamma`` sweeps
            its search interval).
    """

    name = "realistic"

    _GAMMA_LO = 0.0
    _GAMMA_HI = 8.0

    def __init__(
        self,
        mean_degree: float = 27.0,
        spike_fraction: float = 0.7,
        d_min: int = 2,
        d_max: int = 200,
        spikes: tuple[int, ...] = DEFAULT_SPIKES,
        spike_decay: float = 0.35,
    ) -> None:
        if mean_degree < 1.0:
            raise DistributionError(f"mean_degree must be >= 1, got {mean_degree}")
        if not 0.0 <= spike_fraction < 1.0:
            raise DistributionError(f"spike_fraction must be in [0, 1), got {spike_fraction}")
        if d_max < 2:
            raise DistributionError(f"d_max must be >= 2, got {d_max}")
        if not 1 <= d_min < d_max:
            raise DistributionError(f"d_min must be in [1, d_max), got {d_min}")
        if not spikes:
            raise DistributionError("spikes must not be empty")
        if any(not 1 <= s <= d_max for s in spikes):
            raise DistributionError(f"every spike must lie in [1, {d_max}], got {spikes}")

        self.mean_degree = float(mean_degree)
        self.spike_fraction = float(spike_fraction)
        self.d_min = int(d_min)
        self.d_max = int(d_max)
        self.spikes = tuple(sorted(int(s) for s in spikes))

        degrees = np.arange(1, d_max + 1, dtype=float)

        spike_pmf = np.zeros(d_max)
        ranks = np.arange(1, len(self.spikes) + 1, dtype=float)
        spike_weights = ranks**-spike_decay
        spike_weights /= spike_weights.sum()
        for spike, weight in zip(self.spikes, spike_weights):
            spike_pmf[spike - 1] += weight
        spike_mean = float((degrees * spike_pmf).sum())

        body_mean_target = (mean_degree - spike_fraction * spike_mean) / (1.0 - spike_fraction)

        def body_for(gamma: float) -> np.ndarray:
            body = degrees**-gamma
            body[: d_min - 1] = 0.0
            return body / body.sum()

        def mean_for(gamma: float) -> float:
            return float((degrees * body_for(gamma)).sum())

        if not mean_for(self._GAMMA_HI) <= body_mean_target <= mean_for(self._GAMMA_LO):
            raise DistributionError(
                f"mean_degree {mean_degree} unreachable: required body mean "
                f"{body_mean_target:.2f} outside "
                f"[{mean_for(self._GAMMA_HI):.2f}, {mean_for(self._GAMMA_LO):.2f}]; "
                f"adjust spike_fraction/d_min/d_max"
            )
        lo, hi = self._GAMMA_LO, self._GAMMA_HI
        for __ in range(80):  # bisection: mean is strictly decreasing in gamma
            mid = (lo + hi) / 2.0
            if mean_for(mid) > body_mean_target:
                lo = mid
            else:
                hi = mid
        self.gamma = (lo + hi) / 2.0

        self._pmf = spike_fraction * spike_pmf + (1.0 - spike_fraction) * body_for(self.gamma)
        self._pmf /= self._pmf.sum()
        self._degrees = np.arange(1, d_max + 1, dtype=np.int64)

    def pmf(self) -> np.ndarray:
        """The full probability mass function over degrees ``1..d_max``.

        This array *is* Figure 1(a): plot it against
        ``numpy.arange(1, d_max + 1)`` on log-log axes.
        """
        return self._pmf.copy()

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise DistributionError(f"size must be >= 0, got {size}")
        return self._validate_batch(rng.choice(self._degrees, size=size, p=self._pmf))

    def mean(self) -> float:
        return float((self._degrees * self._pmf).sum())

    def support(self) -> tuple[int, int]:
        return (self.d_min if self.d_min < self.spikes[0] else min(self.d_min, self.spikes[0]), self.d_max)
