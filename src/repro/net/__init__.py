"""Asyncio message-passing runtime for the sans-I/O protocol core.

Where the engines (:mod:`repro.engine`) execute Oscar's construction as
omniscient in-process rounds, this package runs it as an actual
distributed system: one asyncio task per peer, each driving the same
:mod:`repro.protocol` state machines over a pluggable transport —

* :mod:`~repro.net.config` — :class:`~repro.net.config.NetConfig`, the
  frozen, eagerly-validated configuration surface (transport, delivery,
  lockstep, failure-detector knobs, probe-plane loss);
* :mod:`~repro.net.codec` — length-prefixed JSON frames (msgpack when
  installed, automatic JSON fallback);
* :mod:`~repro.net.transport` — the in-memory queue transport with
  seeded deterministic delivery order (``fifo`` / ``random`` /
  ``lockstep`` supersteps) and a real localhost-TCP transport;
* :mod:`~repro.net.node` — the per-peer driver: answers link requests,
  advances walks, routes probes, and runs the join machine (free mode)
  or replays coordinator-dealt RNG tickets (lockstep mode);
* :mod:`~repro.net.harness` — :class:`~repro.net.harness.NetHarness`:
  boots a seed plus N peers, runs join/rewire to quiescence, extracts
  the final topology, and validates it against the deterministic
  engines (the oracle-equivalence contract of ``docs/net.md``). With
  :attr:`NetConfig.detector` set it also runs the probe-derived
  membership pipeline: ``kill()`` crashes peers silently and the
  per-peer failure detectors turn probe timeouts into ``Suspect``
  reports, quorum evictions and ``Dead`` broadcasts (see
  ``docs/membership.md``).

Determinism: the runtime never reads wall clocks or OS entropy — every
draw comes from :func:`repro.rng.split` streams and the in-memory
delivery order is itself seeded, so ``net-smoke`` runs are exactly
reproducible. (``repro/net/`` is exempt from the CLK001 wallclock lint
rule only for the *TCP* event loop's internals — see
``docs/determinism.md``.)
"""

from .codec import Codec, get_codec, have_msgpack
from .config import NetConfig
from .harness import SEED_ID, NetHarness, TopologySummary
from .node import NetNode
from .transport import MemoryTransport, TcpEndpoint

__all__ = [
    "Codec",
    "MemoryTransport",
    "NetConfig",
    "NetHarness",
    "NetNode",
    "SEED_ID",
    "TcpEndpoint",
    "TopologySummary",
    "get_codec",
    "have_msgpack",
]
