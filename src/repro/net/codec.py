"""Length-prefixed wire codec: JSON always, msgpack when installed.

Frames are ``4-byte big-endian length || body``; the body is one
envelope dict ``{"src": <node id>, "msg": <message wire dict>}``
encoded by the active codec. JSON is the baseline every interpreter
ships; installing the ``net`` extra (``pip install repro[net]``) swaps
the body encoding to msgpack for compact frames. Selection is
automatic and degradation silent-but-inspectable: ask for msgpack
without the library and :func:`get_codec` hands back JSON with
``requested != name`` so callers (and the CI matrix) can see which
codec actually ran.

Both codecs round-trip the message grammar losslessly: payloads are
ints, bools, strings, lists and IEEE-754 doubles (positions), all of
which JSON and msgpack preserve exactly.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass
from typing import Any, Callable

try:  # the optional `net` extra
    import msgpack  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - exercised where msgpack is absent
    msgpack = None

__all__ = ["Codec", "FrameError", "get_codec", "have_msgpack"]

_LEN = struct.Struct(">I")
MAX_FRAME = 64 * 1024 * 1024  # a directory of a million peers fits well under this


class FrameError(ValueError):
    """A frame violated the length-prefix contract."""


def have_msgpack() -> bool:
    """Whether the msgpack codec is importable in this environment."""
    return msgpack is not None


@dataclass(frozen=True)
class Codec:
    """One body encoding plus the shared length-prefix framing.

    ``requested`` records what the caller asked for; when it differs
    from ``name`` the codec silently fell back (msgpack not installed).
    """

    name: str
    requested: str
    _dumps: Callable[[Any], bytes]
    _loads: Callable[[bytes], Any]

    def encode(self, payload: dict[str, Any]) -> bytes:
        """One framed message: length prefix + encoded body."""
        body = self._dumps(payload)
        if len(body) > MAX_FRAME:
            raise FrameError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
        return _LEN.pack(len(body)) + body

    def decode_body(self, body: bytes) -> dict[str, Any]:
        """Decode one frame body (the length prefix already stripped)."""
        payload = self._loads(body)
        if not isinstance(payload, dict):
            raise FrameError(f"frame body decoded to {type(payload).__name__}, expected dict")
        return payload

    async def read_frame(self, reader: Any) -> dict[str, Any] | None:
        """Read one frame from an ``asyncio.StreamReader``; None on EOF."""
        try:
            prefix = await reader.readexactly(_LEN.size)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return None
        (length,) = _LEN.unpack(prefix)
        if length > MAX_FRAME:
            raise FrameError(f"incoming frame of {length} bytes exceeds MAX_FRAME")
        body = await reader.readexactly(length)
        return self.decode_body(body)


def _json_dumps(payload: Any) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _json_loads(body: bytes) -> Any:
    return json.loads(body.decode("utf-8"))


def get_codec(name: str = "json") -> Codec:
    """Resolve a codec by name (``"json"`` or ``"msgpack"``).

    Requesting msgpack without the library installed falls back to JSON
    — the returned codec's ``requested`` field keeps the original ask.
    """
    if name not in ("json", "msgpack"):
        raise ValueError(f"unknown codec {name!r}")
    if name == "msgpack" and msgpack is not None:
        return Codec(
            name="msgpack",
            requested=name,
            _dumps=lambda p: msgpack.packb(p, use_bin_type=True),
            _loads=lambda b: msgpack.unpackb(b, raw=False),
        )
    return Codec(name="json", requested=name, _dumps=_json_dumps, _loads=_json_loads)
