"""The net runtime's configuration surface, validated once.

:class:`NetConfig` replaces the loose keyword soup
``NetHarness(config, seed=..., lockstep=..., delivery=..., ...)`` with
one frozen dataclass validated eagerly at construction with
:class:`~repro.errors.ConfigError` — the same
fail-at-the-boundary convention as :class:`~repro.config.OscarConfig`
and :class:`~repro.membership.config.DetectorConfig`. The legacy
keyword form still works (:class:`~repro.net.harness.NetHarness`
assembles a ``NetConfig`` from it), so the two spellings cannot drift:
every combination is vetted by the same ``__post_init__``.

The interesting cross-field rules, and why:

* **lockstep** is the bit-exact oracle mode: it needs the memory
  transport's superstep barrier, ``UNIFORM`` sampling (the engine's
  idealization) and the ``lockstep`` delivery order — and it keeps
  protocol timers inert, so a failure detector (real timers, real
  probe timeouts) is contradictory in it.
* **detector** mode runs only over the memory transport: the TCP
  endpoint has no detach-on-death hook, so a "killed" TCP peer would
  reset connections instead of silently dropping probes — the wrong
  failure model.
* **loss** applies to the probe plane only (``Ping``/``Pong`` frames),
  so it is meaningless without a detector and unsupported over TCP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import OscarConfig, SamplingMode
from ..errors import ConfigError
from ..membership import DetectorConfig

__all__ = ["NetConfig"]

_TRANSPORTS = ("memory", "tcp")
_DELIVERIES = (None, "fifo", "random", "lockstep")
_CODECS = ("json", "msgpack")


@dataclass(frozen=True)
class NetConfig:
    """Everything a :class:`~repro.net.harness.NetHarness` run needs.

    Attributes:
        overlay: Overlay construction parameters shared by every peer.
        seed: Root seed — population draws, free-mode peer streams, the
            ``random`` delivery shuffle, probe-plane loss and route
            probes all derive from it by label.
        lockstep: Coordinator-dealt oracle mode (memory transport,
            ``UNIFORM`` sampling, no detector).
        delivery: Memory-transport delivery order override; ``None``
            resolves to ``"lockstep"`` when ``lockstep`` else ``"fifo"``
            (see :attr:`resolved_delivery`).
        transport: ``"memory"`` or ``"tcp"``.
        codec: Wire codec for TCP (``"json"`` / ``"msgpack"``).
        detector: Per-peer failure-detector knobs; ``None`` (the
            default) keeps today's oracle behavior — protocol timers
            stay inert and liveness is never probed. Setting it arms
            real loop timers on every peer: probe schedules fire,
            reply timeouts count dead candidates as refusals, and the
            harness gains ``kill()`` / ``start_detector()`` /
            ``await_evictions()``.
        loss: Probe-plane loss probability in ``[0, 1)`` — each
            ``Ping``/``Pong`` frame is independently dropped with this
            probability by the memory transport (seeded stream,
            ``split(seed, "net", "loss")``). Construction and routing
            traffic is never dropped.
    """

    overlay: OscarConfig = field(default_factory=OscarConfig)
    seed: int = 0
    lockstep: bool = False
    delivery: str | None = None
    transport: str = "memory"
    codec: str = "json"
    detector: DetectorConfig | None = None
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.transport not in _TRANSPORTS:
            raise ConfigError(
                f"transport must be one of {_TRANSPORTS}, got {self.transport!r}"
            )
        if self.delivery not in _DELIVERIES:
            raise ConfigError(
                f"delivery must be one of {_DELIVERIES}, got {self.delivery!r}"
            )
        if self.codec not in _CODECS:
            raise ConfigError(f"codec must be one of {_CODECS}, got {self.codec!r}")
        if not (0.0 <= self.loss < 1.0):
            raise ConfigError(f"loss must be in [0, 1), got {self.loss}")
        if self.lockstep:
            if self.transport != "memory":
                raise ConfigError("lockstep oracle mode requires the memory transport")
            if self.overlay.sampling_mode is not SamplingMode.UNIFORM:
                raise ConfigError("lockstep oracle mode requires UNIFORM sampling")
            if self.delivery not in (None, "lockstep"):
                raise ConfigError(
                    "lockstep oracle mode fixes the delivery order; "
                    f"got delivery={self.delivery!r}"
                )
            if self.detector is not None:
                raise ConfigError(
                    "lockstep oracle mode keeps timers inert and liveness "
                    "oracular; it cannot run a failure detector"
                )
        if self.detector is not None and self.transport != "memory":
            raise ConfigError(
                "the failure detector requires the memory transport "
                "(TCP peers cannot silently die)"
            )
        if self.loss > 0.0 and self.detector is None:
            raise ConfigError(
                "loss drops probe-plane frames only; it needs detector set"
            )

    @property
    def resolved_delivery(self) -> str:
        """The delivery order actually used by the memory transport."""
        return self.delivery or ("lockstep" if self.lockstep else "fifo")
