"""The per-peer driver: one asyncio task animating the protocol machines.

:class:`NetNode` owns a peer's *state* (position, caps, in-degree, the
long links it holds) and its *I/O* (an endpoint), and drives the pure
:mod:`repro.protocol` machines over them. Two operating modes:

* **free** — the peer runs :class:`~repro.protocol.join.JoinProtocol`
  with its own labelled RNG stream: it estimates partitions against the
  seed-fed directory (or by real message walks in ``WALK`` mode) and
  negotiates links concurrently with everyone else. Delivery order is
  whatever the transport provides; equivalence with the engines is at
  the invariant level. TCP always runs free mode.
* **lockstep** — the peer holds no construction RNG at all: the
  coordinator (the harness behind the seed id) deals
  ``EstimateLevel`` / ``AcquireTicket`` messages whose uniforms follow
  the batched engine's exact draw layout, and the peer resolves every
  *decision* locally from its directory snapshot with the same shared
  protocol kernels the engine's sequential reference calls. Combined
  with the memory transport's superstep barrier (replies precede
  commits; commits replay in priority order), the built topology is
  bit-identical to :meth:`BatchConstructionEngine.grow
  <repro.engine.construct.BatchConstructionEngine.grow>`.

In both modes the *resident* duties are identical and message-driven:
acknowledge link requests below the in-cap, grant commits against the
live in-degree, advance sampling walks, and route probes greedily.
"""

from __future__ import annotations

import asyncio
from typing import Any

import numpy as np

from ..config import OscarConfig, SamplingMode
from ..membership import POLL_TIMER, DetectorConfig, FailureDetector
from ..protocol.decisions import accepts_link, link_winner_key
from ..protocol.directory import Directory
from ..protocol.effects import (
    CancelTimer,
    Effect,
    JoinOutcome,
    LinkEstablished,
    Send,
    StartTimer,
    SuspectPeer,
)
from ..protocol.estimation import cw_arc_slice, select_border
from ..protocol.join import JoinProtocol
from ..protocol.messages import (
    AcquireReport,
    AcquireTicket,
    BeginAcquire,
    Dead,
    DirectoryUpdate,
    EstimateLevel,
    EstimateReport,
    Hello,
    JoinDone,
    Kill,
    LinkCommit,
    LinkReply,
    LinkRequest,
    LinkResult,
    Message,
    Ping,
    Pong,
    ResetLinks,
    Rewire,
    RouteDone,
    RouteProbe,
    StartDetector,
    Suspect,
    WalkDone,
    WalkStep,
    Welcome,
)
from ..protocol.negotiation import LinkNegotiation
from ..protocol.routing import Deliver, GreedyRouter
from ..protocol.sampling import SamplingWalk
from ..ring.identifiers import in_cw_interval
from ..rng import split

__all__ = ["NetNode"]


class NetNode:
    """One peer: state + endpoint + the machines that animate them.

    Args:
        endpoint: Transport endpoint (memory or TCP).
        position: Ring position in ``[0, 1)``.
        cap_in / cap_out: Volunteered capacities (``rho_max_in/out``).
        seed_id: The seed node's transport id.
        config: Overlay parameters (sample size, retries, ...).
        net_seed: Root seed for this peer's own labelled streams.
        lockstep: Run the coordinator-dealt oracle mode.
        directory: Pre-shared :class:`Directory` (in-memory scale runs
            share one object across all peers; wire bootstrap builds a
            private copy from the seed's broadcast when absent).
        detector: Failure-detector knobs. ``None`` (the default) keeps
            the oracle contract: protocol timers stay inert and the
            peer never probes liveness. When set, ``StartTimer`` /
            ``CancelTimer`` effects are wired to real loop timers —
            so probe schedules fire, reply timeouts count dead
            candidates as refusals, lost walks relaunch — and a
            ``StartDetector`` message arms a
            :class:`~repro.membership.detector.FailureDetector` over
            this peer's directory predecessors.
    """

    def __init__(
        self,
        endpoint: Any,
        position: float,
        cap_in: int,
        cap_out: int,
        seed_id: int,
        config: OscarConfig | None = None,
        net_seed: int = 0,
        lockstep: bool = False,
        directory: Directory | None = None,
        detector: DetectorConfig | None = None,
    ) -> None:
        self.endpoint = endpoint
        self.position = float(position)
        self.cap_in = int(cap_in)
        self.cap_out = int(cap_out)
        self.seed_id = int(seed_id)
        self.config = config or OscarConfig()
        self.net_seed = int(net_seed)
        self.lockstep = bool(lockstep)
        self.node_id: int = getattr(endpoint, "node_id", -1)
        self.directory = directory
        self._shared_directory = directory is not None
        self.in_degree = 0
        self.out_links: list[int] = []
        self.join: JoinProtocol | None = None
        self.epoch = 0
        self.rng: np.random.Generator | None = None
        # failure-detector state (None/empty unless `detector` is set)
        self.detector_config = detector
        self._fd: FailureDetector | None = None
        self._timers: dict[str, asyncio.TimerHandle] = {}
        # lockstep member state
        self._member: _LockstepMember | None = None
        self._stopped = False

    # -- lifecycle -----------------------------------------------------

    async def run(self) -> None:
        """Bootstrap, then serve messages until cancelled."""
        await self.endpoint.start()
        host, port = self.endpoint.address
        self.endpoint.send(
            self.seed_id,
            Hello(
                position=self.position,
                cap_in=self.cap_in,
                cap_out=self.cap_out,
                host=host,
                port=port,
            ),
        )
        while not self._stopped:
            src, message = await self.endpoint.recv()
            try:
                self.dispatch(src, message)
            finally:
                self.endpoint.done()

    # -- message dispatch ----------------------------------------------

    def dispatch(self, src: int, message: Message) -> None:
        """Handle one message synchronously; effects go to the endpoint."""
        if isinstance(message, Kill):
            self._crash()
            return
        if isinstance(message, Ping):
            self.endpoint.send(src, Pong(seq=message.seq))
            return
        if isinstance(message, Pong):
            if self._fd is not None:
                self._run_effects(self._fd.on_pong(src, message, now=self._now()))
            return
        if isinstance(message, StartDetector):
            self._arm_detector()
            return
        if isinstance(message, Dead):
            self._on_dead(message)
            return
        if isinstance(message, Welcome):
            self.node_id = int(message.node_id)
            if hasattr(self.endpoint, "set_node_id"):
                self.endpoint.set_node_id(self.node_id)
            return
        if isinstance(message, DirectoryUpdate):
            self._on_directory(message)
            return
        if isinstance(message, LinkRequest):
            self.endpoint.send(
                src,
                LinkReply(
                    token=message.token,
                    accept=accepts_link(self.in_degree, self.cap_in),
                    in_degree=self.in_degree,
                    rho_in=self.cap_in,
                ),
            )
            return
        if isinstance(message, LinkCommit):
            granted = accepts_link(self.in_degree, self.cap_in)
            if granted:
                self.in_degree += 1
            self.endpoint.send(src, LinkResult(token=message.token, granted=granted))
            return
        if isinstance(message, WalkStep):
            self._run_effects(
                SamplingWalk.on_step(
                    message,
                    me=self.node_id,
                    my_position=self.position,
                    neighbors=self._arc_neighbors(message.start, message.end),
                    rng=self._walk_rng(),
                )
            )
            return
        if isinstance(message, RouteProbe):
            self._on_probe(message)
            return
        if isinstance(message, Rewire):
            self._on_rewire(message)
            return
        if isinstance(message, ResetLinks):
            self.out_links.clear()
            self.in_degree = 0
            self.epoch = int(message.epoch)
            if self.lockstep and self.directory is not None:
                self._member = _LockstepMember(self)
            return
        if self.lockstep and self._member is not None:
            self._run_effects(self._member.dispatch(src, message))
            return
        if self.join is not None:
            if isinstance(message, LinkReply):
                self._run_effects(self.join.on_reply(src, message))
            elif isinstance(message, LinkResult):
                self._run_effects(self.join.on_result(message))
            elif isinstance(message, WalkDone):
                self._run_effects(self.join.on_walk_done(message))

    def _run_effects(self, effects: list[Effect]) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                self.endpoint.send(effect.to, effect.message)
            elif isinstance(effect, LinkEstablished):
                self.out_links.append(int(effect.peer))
            elif isinstance(effect, SuspectPeer):
                self.endpoint.send(
                    self.seed_id,
                    Suspect(target=int(effect.peer), failures=int(effect.failures)),
                )
            elif isinstance(effect, StartTimer):
                if self.detector_config is not None:
                    self._start_timer(effect.name, effect.delay)
            elif isinstance(effect, CancelTimer):
                if self.detector_config is not None:
                    self._cancel_timer(effect.name)
            elif isinstance(effect, JoinOutcome):
                pass  # terminal marker; JoinDone rides as a Send effect
            # Without a detector config, timers stay deliberately inert:
            # every directory member is live and replies, so the oracle
            # modes never need them and stay exactly as deterministic as
            # before the detector existed (exercised in protocol tests).

    # -- failure detection ----------------------------------------------

    def _now(self) -> float:
        # The loop's monotonic clock, not a wall clock: timer math only.
        return asyncio.get_running_loop().time()

    def _start_timer(self, name: str, delay: float) -> None:
        """(Re-)arm ``name``; a zero delay means one reply-timeout."""
        self._cancel_timer(name)
        assert self.detector_config is not None
        seconds = delay if delay > 0.0 else self.detector_config.timeout_s
        loop = asyncio.get_running_loop()
        self._timers[name] = loop.call_later(seconds, self._on_timer, name)

    def _cancel_timer(self, name: str) -> None:
        handle = self._timers.pop(name, None)
        if handle is not None:
            handle.cancel()

    def _on_timer(self, name: str) -> None:
        """A loop timer fired; route it to the owning machine."""
        self._timers.pop(name, None)
        if self._stopped:
            return
        if name == POLL_TIMER:
            if self._fd is not None:
                self._run_effects(self._fd.poll(self._now()))
            return
        if self.join is not None:
            self._run_effects(self.join.on_timer(name))

    def _crash(self) -> None:
        """``Kill`` semantics: stop serving, silently, mid-everything.

        Cancels every armed timer, detaches from the transport (later
        sends to this id vanish — nobody gets connection errors, their
        probes just never come back) and lets the run loop exit. The
        superstep ack for the ``Kill`` itself still happens in the run
        loop's ``finally``, keeping the pump's accounting intact.
        """
        self._stopped = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self._fd = None
        if hasattr(self.endpoint, "detach"):
            self.endpoint.detach()

    def _arm_detector(self) -> None:
        """``StartDetector``: probe my directory predecessors forever."""
        if self.detector_config is None or self.directory is None or self._stopped:
            return
        self._fd = FailureDetector(self.node_id, self.detector_config)
        self._rewatch()
        self._run_effects(self._fd.poll(self._now()))

    def _rewatch(self) -> None:
        """Point the detector at the current directory neighborhood.

        Each peer is probed by its ``n_monitors`` clockwise successors,
        so this monitor watches its clockwise *predecessors*. Targets
        that left the neighborhood (eviction shifted the rows) are
        unwatched first so their counters don't leak across targets.
        """
        assert self._fd is not None and self.directory is not None
        d = self.directory
        config = self.detector_config
        assert config is not None
        row = d.row_of(self.node_id)
        panel = min(config.n_monitors, d.m - 1)
        want = {int(d.id_at(row - j)) for j in range(1, panel + 1)}
        for target in self._fd.targets:
            if target not in want:
                self._fd.unwatch(target)
        for target in sorted(want):
            self._fd.watch(target)

    def _on_dead(self, message: Dead) -> None:
        """Quorum-confirmed evictions: rebuild my membership knowledge.

        The rebuilt directory is always a *private* copy — peers that
        bootstrapped on the shared at-scale object fork it here, since
        from this point on membership knowledge is per-peer state that
        gossip/broadcast keeps in (bounded-staleness) agreement.
        """
        if self.directory is None or self._stopped:
            return
        targets = {int(t) for t in message.targets}
        targets.discard(self.node_id)  # an eviction of me I outlived
        if not targets:
            return
        keep = [pair for pair in self.directory.to_pairs() if int(pair[0]) not in targets]
        self.directory = Directory.from_pairs(keep)
        self._shared_directory = False
        self.out_links = [link for link in self.out_links if link not in targets]
        if self._fd is not None:
            for target in sorted(targets):
                self._fd.unwatch(target)
            self._rewatch()

    # -- bootstrap and rewiring ----------------------------------------

    def _on_directory(self, message: DirectoryUpdate) -> None:
        if not self._shared_directory:
            self.directory = Directory.from_pairs(message.peers)
        if message.addrs:
            self.endpoint.learn_addresses(
                [(int(a[0]), str(a[1]), int(a[2])) for a in message.addrs]
            )
        if self.lockstep:
            assert self.directory is not None
            self._member = _LockstepMember(self)
            return
        self._run_effects(self._start_join())

    def _start_join(self) -> list[Effect]:
        assert self.directory is not None
        self.rng = split(self.net_seed, "net", self.epoch, self.node_id)
        self.join = JoinProtocol(
            self.node_id,
            self.position,
            self.seed_id,
            self.directory,
            self.rng,
            k=self.config.partitions_for(max(1, self.directory.m)),
            sample_size=self.config.sample_size,
            rho_max_out=self.cap_out,
            link_retries=self.config.link_retries,
            power_of_two=self.config.power_of_two,
            respect_out_caps=self.config.respect_out_caps,
            walk_mode=self.config.sampling_mode is SamplingMode.WALK,
            walk_hops=self.config.walk_hops,
        )
        return self.join.start()

    def _on_rewire(self, message: Rewire) -> None:
        """Free-mode rewiring epoch: local teardown, then re-join.

        Teardown is purely local (own links dropped, own in-degree
        zeroed), and the memory transport's superstep barrier guarantees
        every peer resets before any re-acquisition request lands.
        """
        self.out_links.clear()
        self.in_degree = 0
        self.epoch = int(message.epoch)
        self._run_effects(self._start_join())

    # -- walking and routing -------------------------------------------

    def _walk_rng(self) -> np.random.Generator:
        if self.rng is None:
            self.rng = split(self.net_seed, "net", self.epoch, self.node_id)
        return self.rng

    def _arc_neighbors(self, start: float, end: float) -> list[int]:
        """My restricted neighborhood for a walk over ``(start, end]``."""
        assert self.directory is not None
        d = self.directory
        row = d.row_of(self.node_id)
        out: list[int] = []
        for peer in (d.id_at(row + 1), d.id_at(row - 1), *self.out_links):
            if peer == self.node_id or peer in out:
                continue
            if in_cw_interval(d.position_at(d.row_of(peer)), start, end):
                out.append(int(peer))
        return out

    def _on_probe(self, message: RouteProbe) -> None:
        assert self.directory is not None
        d = self.directory
        row = d.row_of(self.node_id)
        decision = GreedyRouter.decide(
            message.target,
            me=self.node_id,
            my_position=self.position,
            predecessor_position=d.position_at(row - 1),
            successor=d.id_at(row + 1),
            successor_position=d.position_at(row + 1),
            neighbors=[
                (peer, d.position_at(d.row_of(peer)))
                for peer in (d.id_at(row + 1), d.id_at(row - 1), *self.out_links)
            ],
        )
        if isinstance(decision, Deliver):
            self.endpoint.send(
                message.origin,
                RouteDone(
                    probe_id=message.probe_id,
                    delivered=self.node_id,
                    hops=message.hops,
                    ok=True,
                ),
            )
            return
        if message.hops >= message.budget:
            self.endpoint.send(
                message.origin,
                RouteDone(
                    probe_id=message.probe_id,
                    delivered=self.node_id,
                    hops=message.hops,
                    ok=False,
                ),
            )
            return
        self.endpoint.send(
            decision.to,
            RouteProbe(
                probe_id=message.probe_id,
                target=message.target,
                origin=message.origin,
                hops=message.hops + 1,
                budget=message.budget,
            ),
        )


class _LockstepMember:
    """The ticket-replay half of a lockstep peer.

    Holds the estimation descent state and the per-round negotiation,
    computing every decision from the owner's directory snapshot with
    the exact protocol kernels — no local randomness whatsoever.
    """

    def __init__(self, node: NetNode) -> None:
        self.node = node
        d = node.directory
        assert d is not None
        self.row = d.row_of(node.node_id)
        self.origin = node.position
        self.prev = d.position_at(self.row - 1)
        self.far_end = self.prev
        self.anchor = d.key_at(self.row)
        self.medians: list[float] = []
        self.est_active = True
        self.priority = 0
        self.linked_rows: set[int] = set()
        self._nego: LinkNegotiation | None = None
        self._round = -1

    def dispatch(self, src: int, message: Message) -> list[Effect]:
        if isinstance(message, EstimateLevel):
            return self._on_level(message)
        if isinstance(message, BeginAcquire):
            self.priority = int(message.priority)
            return []
        if isinstance(message, AcquireTicket):
            return self._on_ticket(message)
        if isinstance(message, LinkReply) and self._nego is not None:
            return self._after(self._nego.on_reply(src, message))
        if isinstance(message, LinkResult) and self._nego is not None:
            return self._after(self._nego.on_result(message))
        return []

    # -- estimation (engine draw layout, local decisions) --------------

    def _on_level(self, message: EstimateLevel) -> list[Effect]:
        d = self.node.directory
        assert d is not None
        report = EstimateReport(level=message.level, cont=False)
        if not self.est_active:
            return [Send(to=self.node.seed_id, message=report)]
        lo, __, count = cw_arc_slice(d.positions, self.origin, self.prev)
        if count == 0:
            self.est_active = False
            return [Send(to=self.node.seed_id, message=report)]
        m = d.m
        rows = [(lo + int(float(u) * count)) % m for u in message.u_row]
        border, stop = select_border(
            self.anchor,
            self.origin,
            self.prev,
            [d.key_at(r) for r in rows],
            [d.position_at(r) for r in rows],
        )
        if stop:
            self.est_active = False
            return [Send(to=self.node.seed_id, message=report)]
        self.medians.append(border)
        self.prev = border
        return [Send(to=self.node.seed_id, message=EstimateReport(level=message.level, cont=True))]

    # -- acquisition (engine round semantics over real messages) -------

    def _table_arc(self, p: int) -> tuple[float, float] | None:
        """Partition ``p`` (0-indexed) of my estimated table, engine layout."""
        end = self.far_end if p == 0 else self.medians[p - 1]
        start = self.medians[p] if len(self.medians) > p else self.origin
        if start == end and p > 0:
            return None
        return (start, end)

    def _on_ticket(self, message: AcquireTicket) -> list[Effect]:
        d = self.node.directory
        assert d is not None
        self._round = int(message.round_no)
        k_count = len(self.medians) + 1
        arc = self._table_arc(int(float(message.u_part) * k_count))
        if arc is None:
            return [self._report(empty_draw=True)]
        lo, __, count = cw_arc_slice(d.positions, arc[0], arc[1])
        if count == 0:
            return [self._report(empty_draw=True)]
        m = d.m
        candidates: list[int] = []
        for u in message.u_cand:
            c = (lo + int(float(u) * count)) % m
            if c not in candidates:
                candidates.append(c)
        eligible = [c for c in candidates if c != self.row and c not in self.linked_rows]
        if not eligible:
            return [self._report()]
        self._nego = LinkNegotiation(
            token=self._round, candidates=[d.id_at(c) for c in eligible], priority=self.priority
        )
        return self._nego.start()

    def _after(self, effects: list[Effect]) -> list[Effect]:
        nego = self._nego
        if nego is None or not nego.done:
            return effects
        self._nego = None
        # The member does its own link bookkeeping below; keep only the
        # Send effects so the node driver doesn't double-append.
        effects = [e for e in effects if isinstance(e, Send)]
        if nego.placed:
            assert nego.linked_to is not None
            d = self.node.directory
            assert d is not None
            self.node.out_links.append(int(nego.linked_to))
            self.linked_rows.add(d.row_of(nego.linked_to))
            filled = len(self.node.out_links) >= self.node.cap_out
            return effects + [
                self._report(success=True, refusals=nego.refusals, filled=filled)
            ]
        return effects + [
            self._report(refusals=nego.refusals, conflict=nego.conflict)
        ]

    def _report(
        self,
        success: bool = False,
        refusals: int = 0,
        empty_draw: bool = False,
        conflict: bool = False,
        filled: bool = False,
    ) -> Effect:
        return Send(
            to=self.node.seed_id,
            message=AcquireReport(
                round_no=self._round,
                success=success,
                filled=filled,
                empty_draw=empty_draw,
                refusals=refusals,
                conflict=conflict,
            ),
        )


# Engine parity notes, for the reader auditing bit-exactness:
#   * replies carry the round-start in-degree because the superstep
#     barrier processes every LinkReply before any LinkCommit;
#   * the winner scan is LinkNegotiation's link_winner_key minimum —
#     the same key min() the engine's sequential reference evaluates;
#   * a commit's grant re-checks the live in-degree at the candidate,
#     and lockstep delivery replays commits in ascending priority —
#     the engine round's conflict rule, message-shaped.
_ = (JoinDone, link_winner_key)  # names referenced by the notes above
