"""Boot a network, run it to quiescence, validate the topology.

:class:`NetHarness` owns the seed side of the runtime: it registers the
seed endpoint (:data:`SEED_ID`), boots N :class:`~repro.net.node.NetNode`
tasks, answers the bootstrap handshake, and drives construction to
quiescence. Two build disciplines:

* **free** — peers join concurrently under their own labelled RNG
  streams; the harness only deals membership and collects ``JoinDone``.
  Runs over the memory transport (any delivery order) and over TCP.
* **lockstep** (memory transport only) — the harness is the
  *coordinator*: it consumes one construction stream in the batched
  engine's exact draw layout (caps, positions, one uniform matrix per
  estimation level over the active rows in ascending row order, one
  priority shuffle, one partition + candidate draw per acquisition
  round) and deals the uniforms to peers as RNG tickets. Peers decide
  everything locally from their directory; the transport's superstep
  barrier gives replies snapshot semantics and replays commits in
  priority order. The resulting topology and
  :class:`~repro.core.construction.LinkAcquisitionStats` are
  **bit-identical** to :meth:`BatchConstructionEngine.grow
  <repro.engine.construct.BatchConstructionEngine.grow>` /
  :meth:`rewire <repro.engine.construct.BatchConstructionEngine.rewire>`
  on the same seed — the oracle-equivalence contract of ``docs/net.md``.

The facade is synchronous (one private :class:`asyncio.Runner` carries
the loop across calls) so the test suite needs no asyncio plugin::

    harness = NetHarness(OscarConfig(), seed=7, lockstep=True)
    stats = harness.build(500, UniformKeys(), ConstantDegrees(4))
    success, hops = harness.route_check(200)
    harness.close()
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass

import numpy as np

from ..config import OscarConfig, SamplingMode
from ..core.construction import LinkAcquisitionStats
from ..degree import DegreeDistribution, assign_caps
from ..errors import SimulationError
from ..protocol.directory import Directory
from ..protocol.messages import (
    AcquireReport,
    AcquireTicket,
    BeginAcquire,
    DirectoryUpdate,
    EstimateLevel,
    EstimateReport,
    Hello,
    JoinDone,
    Message,
    ResetLinks,
    Rewire,
    RouteDone,
    RouteProbe,
    Welcome,
)
from ..rng import split
from ..workloads import KeyDistribution
from .codec import get_codec
from .node import NetNode
from .transport import MemoryTransport, TcpEndpoint

__all__ = ["NetHarness", "SEED_ID", "TopologySummary"]

SEED_ID = -1
"""The seed node's transport id (peers are 0..n-1)."""


@dataclass(frozen=True)
class TopologySummary:
    """What a finished run looks like, in one verifiable value."""

    n: int
    links: int
    gave_up: int
    cap_violations: int
    routes_attempted: int
    routes_delivered: int
    mean_hops: float
    messages: int
    generations: int

    @property
    def route_success(self) -> float:
        """Fraction of probes delivered to the responsible peer."""
        if not self.routes_attempted:
            return 1.0
        return self.routes_delivered / self.routes_attempted


class NetHarness:
    """Seed-side driver: boot peers, build, rewire, probe, extract.

    Args:
        config: Overlay parameters shared by every peer.
        seed: Root seed — population draws, free-mode peer streams, the
            ``random`` delivery shuffle and route probes all derive from
            it by label.
        lockstep: Coordinator-dealt oracle mode (memory transport,
            ``UNIFORM`` sampling only).
        delivery: Memory-transport delivery order override (defaults to
            ``"lockstep"`` when ``lockstep`` else ``"fifo"``).
        transport: ``"memory"`` or ``"tcp"``.
        codec: Wire codec name for TCP (``"json"`` / ``"msgpack"``).
    """

    def __init__(
        self,
        config: OscarConfig | None = None,
        *,
        seed: int = 0,
        lockstep: bool = False,
        delivery: str | None = None,
        transport: str = "memory",
        codec: str = "json",
    ) -> None:
        self.config = config or OscarConfig()
        self.seed = int(seed)
        self.lockstep = bool(lockstep)
        if transport not in ("memory", "tcp"):
            raise SimulationError(f"unknown transport {transport!r}")
        if self.lockstep:
            if transport != "memory":
                raise SimulationError("lockstep oracle mode requires the memory transport")
            if self.config.sampling_mode is not SamplingMode.UNIFORM:
                raise SimulationError("lockstep oracle mode requires UNIFORM sampling")
            if delivery not in (None, "lockstep"):
                raise SimulationError(
                    "lockstep oracle mode fixes the delivery order; "
                    f"got delivery={delivery!r}"
                )
        self.transport_kind = transport
        self.delivery = delivery or ("lockstep" if self.lockstep else "fifo")
        self.codec_name = codec
        self.nodes: list[NetNode] = []
        self.directory: Directory | None = None
        self.stats = LinkAcquisitionStats()
        self._runner = asyncio.Runner()
        self._transport: MemoryTransport | None = None
        self._seed_ep = None
        self._tasks: list[asyncio.Task] = []
        self._epoch = 0
        self._probe_id = 0
        self._routes = (0, 0, 0)  # attempted, delivered, total hops
        self._closed = False

    # -- sync facade ---------------------------------------------------

    def __enter__(self) -> "NetHarness":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def build(
        self,
        n: int,
        keys: KeyDistribution,
        degrees: DegreeDistribution,
        paired_caps: bool = True,
    ) -> LinkAcquisitionStats:
        """Draw a population and build the overlay to quiescence.

        The population draw consumes ``split(seed, "join")`` exactly as
        :meth:`BatchConstructionEngine.grow` growing a fresh overlay
        does (caps first, then positions with in-batch collision
        rejection) — in lockstep mode the same generator then feeds the
        coordinator, completing the engine's stream layout.
        """
        if n < 2:
            raise SimulationError("a network needs at least 2 peers")
        rng = split(self.seed, "join")
        caps_in, caps_out = assign_caps(degrees, rng, n, paired=paired_caps)
        positions = self._draw_positions(rng, keys, n)
        self.stats = self._runner.run(
            self._build_async(n, positions, caps_in, caps_out, rng)
        )
        return self.stats

    def rewire(self) -> LinkAcquisitionStats:
        """One global rewiring epoch over the booted network.

        Lockstep mode consumes a fresh ``split(seed, "rewire")`` stream
        in the engine's :meth:`~BatchConstructionEngine.rewire` layout;
        free mode bumps the epoch label of every peer's own stream.
        """
        if self.directory is None:
            raise SimulationError("build() the network before rewiring it")
        self._epoch += 1
        self.stats = self._runner.run(self._rewire_async())
        return self.stats

    def route_check(self, n_probes: int, budget: int | None = None) -> tuple[float, float]:
        """Probe ``n_probes`` random keys from random peers via real
        ``RouteProbe`` hops; returns ``(success rate, mean hops)``.

        A probe only counts as delivered when it terminates ``ok`` at
        exactly the peer :meth:`Directory.successor_of_key` names.
        """
        if self.directory is None:
            raise SimulationError("build() the network before routing on it")
        return self._runner.run(self._route_async(n_probes, budget))

    def out_links(self) -> dict[int, list[int]]:
        """``node id -> out-link ids`` in placement order."""
        return {node.node_id: list(node.out_links) for node in self.nodes}

    def in_degrees(self) -> dict[int, int]:
        """``node id -> live in-degree``."""
        return {node.node_id: node.in_degree for node in self.nodes}

    def summary(self) -> TopologySummary:
        """Snapshot the run (topology + probe + transport counters)."""
        attempted, delivered, hops = self._routes
        transport = self._transport
        return TopologySummary(
            n=len(self.nodes),
            links=sum(len(node.out_links) for node in self.nodes),
            gave_up=self.stats.slots_given_up,
            cap_violations=sum(
                1 for node in self.nodes if node.in_degree > node.cap_in
            ),
            routes_attempted=attempted,
            routes_delivered=delivered,
            mean_hops=hops / delivered if delivered else 0.0,
            messages=transport.messages_delivered if transport else 0,
            generations=transport.generations if transport else 0,
        )

    def close(self) -> None:
        """Tear down tasks, transports and the private event loop."""
        if self._closed:
            return
        self._closed = True
        try:
            self._runner.run(self._close_async())
        finally:
            self._runner.close()

    # -- population draw (engine grow layout) --------------------------

    def _draw_positions(
        self, rng: np.random.Generator, keys: KeyDistribution, count: int
    ) -> np.ndarray:
        """Engine ``_draw_positions`` over an empty ring: bulk draws with
        in-batch dedup keeping first occurrences."""
        accepted: list[float] = []
        seen: set[float] = set()
        need = count
        while need > 0:
            draw = np.asarray(keys.sample(rng, need), dtype=float)
            for value in draw:
                position = float(value)
                if position in seen:
                    continue
                seen.add(position)
                accepted.append(position)
            need = count - len(accepted)
        return np.asarray(accepted, dtype=float)

    # -- async internals -----------------------------------------------

    async def _build_async(
        self,
        n: int,
        positions: np.ndarray,
        caps_in: np.ndarray,
        caps_out: np.ndarray,
        rng: np.random.Generator,
    ) -> LinkAcquisitionStats:
        if self.transport_kind == "tcp":
            return await self._build_tcp(n, positions, caps_in, caps_out)
        transport = MemoryTransport(mode=self.delivery, seed=self.seed)
        self._transport = transport
        self._seed_ep = transport.endpoint(SEED_ID)
        self.directory = Directory(range(n), positions)
        transport.start()
        loop = asyncio.get_running_loop()
        for i in range(n):
            node = NetNode(
                transport.endpoint(i),
                positions[i],
                int(caps_in[i]),
                int(caps_out[i]),
                SEED_ID,
                config=self.config,
                net_seed=self.seed,
                lockstep=self.lockstep,
                directory=self.directory,  # one shared object at scale
            )
            self.nodes.append(node)
            self._tasks.append(loop.create_task(node.run()))
        await self._collect(n, Hello)
        pairs = self.directory.to_pairs()
        for node in self.nodes:
            self._seed_ep.send(node.node_id, Welcome(node_id=node.node_id, peers=[]))
        for node in self.nodes:
            self._seed_ep.send(node.node_id, DirectoryUpdate(peers=pairs, addrs=[]))
        if self.lockstep:
            return await self._coordinate(rng, list(range(n)))
        await self._collect(n, JoinDone)
        return self._aggregate_free()

    async def _build_tcp(
        self, n: int, positions: np.ndarray, caps_in: np.ndarray, caps_out: np.ndarray
    ) -> LinkAcquisitionStats:
        codec = get_codec(self.codec_name)
        self._seed_ep = TcpEndpoint(SEED_ID, codec=codec)
        await self._seed_ep.start()
        seed_addr = self._seed_ep.address
        loop = asyncio.get_running_loop()
        for i in range(n):
            endpoint = TcpEndpoint(-2 - i, codec=get_codec(self.codec_name))
            endpoint.learn_addresses([(SEED_ID, *seed_addr)])
            node = NetNode(
                endpoint,
                positions[i],
                int(caps_in[i]),
                int(caps_out[i]),
                SEED_ID,
                config=self.config,
                net_seed=self.seed,
            )
            self.nodes.append(node)
            self._tasks.append(loop.create_task(node.run()))
        # Ids go out in Hello arrival order — construction order under a
        # deterministic transport, socket order here.
        hellos = await self._collect(n, Hello)
        pairs: list[list[object]] = []
        addrs: list[list[object]] = []
        for node_id, (src, hello) in enumerate(hellos):
            self._seed_ep.learn_addresses([(src, hello.host, hello.port)])
            self._seed_ep.learn_addresses([(node_id, hello.host, hello.port)])
            pairs.append([node_id, float(hello.position)])
            addrs.append([node_id, hello.host, hello.port])
            self._seed_ep.send(src, Welcome(node_id=node_id, peers=[]))
        self.directory = Directory.from_pairs(pairs)
        for node_id in range(n):
            self._seed_ep.send(node_id, DirectoryUpdate(peers=pairs, addrs=addrs))
        await self._collect(n, JoinDone)
        return self._aggregate_free()

    async def _rewire_async(self) -> LinkAcquisitionStats:
        assert self.directory is not None
        if self.lockstep:
            for node in self.nodes:
                self._seed_ep.send(node.node_id, ResetLinks(epoch=self._epoch))
            rng = split(self.seed, "rewire")
            return await self._coordinate(rng, list(range(self.directory.m)))
        for node in self.nodes:
            self._seed_ep.send(node.node_id, Rewire(epoch=self._epoch))
        await self._collect(len(self.nodes), JoinDone)
        return self._aggregate_free()

    async def _route_async(self, n_probes: int, budget: int | None) -> tuple[float, float]:
        directory = self.directory
        assert directory is not None
        m = directory.m
        if budget is None:
            budget = 4 * max(1, math.ceil(math.log2(max(2, m)))) + 8
        rng = split(self.seed, "net", "routes", self._probe_id)
        attempted, delivered, hops_total = self._routes
        for __ in range(int(n_probes)):
            probe_id = self._probe_id
            self._probe_id += 1
            target = float(rng.random())
            start = directory.id_at(int(rng.integers(0, m)))
            expected = directory.successor_of_key(target)
            self._seed_ep.send(
                start,
                RouteProbe(
                    probe_id=probe_id, target=target, origin=SEED_ID, hops=0, budget=budget
                ),
            )
            while True:
                __, message = await self._seed_ep.recv()
                self._seed_ep.done()
                if isinstance(message, RouteDone) and message.probe_id == probe_id:
                    break
            attempted += 1
            if message.ok and message.delivered == expected:
                delivered += 1
                hops_total += message.hops
        self._routes = (attempted, delivered, hops_total)
        success = delivered / attempted if attempted else 1.0
        return success, (hops_total / delivered if delivered else 0.0)

    async def _close_async(self) -> None:
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        if self._transport is not None:
            self._transport.stop()
        if self._seed_ep is not None:
            await self._seed_ep.close()
        for node in self.nodes:
            await node.endpoint.close()

    # -- the lockstep coordinator (engine-exact draw layout) -----------

    async def _coordinate(
        self, rng: np.random.Generator, rows: list[int]
    ) -> LinkAcquisitionStats:
        """Deal RNG tickets in :class:`BatchConstructionEngine`'s layout.

        ``rows`` are the requesting directory rows in ascending order —
        the same index space as the engine's ``LiveView`` rows, so every
        uniform lands on the peer the engine would have spent it on.
        """
        config = self.config
        directory = self.directory
        assert directory is not None
        stats = LinkAcquisitionStats()
        m = directory.m
        n = len(rows)
        ids = [directory.id_at(r) for r in rows]

        # Estimation: one (active, sample_size) matrix per level, rows
        # dealt in ascending row order; peers report level survival.
        k = config.partitions_for(max(1, m))
        active = [True] * n
        for level in range(max(0, k - 1)):
            act = [i for i in range(n) if active[i]]
            if not act:
                break
            u = rng.random((len(act), config.sample_size))
            for j, i in enumerate(act):
                self._seed_ep.send(
                    ids[i],
                    EstimateLevel(level=level, u_row=[float(x) for x in u[j]]),
                )
            reports = await self._collect(len(act), EstimateReport)
            cont = {src: msg.cont for src, msg in reports}
            for i in act:
                active[i] = cont[ids[i]]

        # One priority shuffle over the requesting rows.
        order = np.asarray(rows, dtype=np.int64).copy()
        rng.shuffle(order)
        priority_of = np.full(m, -1, dtype=np.int64)
        priority_of[order] = np.arange(order.size, dtype=np.int64)
        for i in range(n):
            self._seed_ep.send(ids[i], BeginAcquire(priority=int(priority_of[rows[i]])))

        # Acquisition rounds: one partition + candidate draw per active
        # requester per round; the same retry/fill bookkeeping as
        # BatchConstructionEngine._acquire over the peers' reports.
        target = np.asarray([self.nodes[i].cap_out for i in ids], dtype=np.int64)
        if not config.respect_out_caps:
            target = np.maximum(target, 1)
        n_cand = 2 if config.power_of_two else 1
        out_count = np.zeros(n, dtype=np.int64)
        slot_attempts = np.zeros(n, dtype=np.int64)
        acquiring = out_count < target
        round_no = 0
        while True:
            act_idx = np.nonzero(acquiring)[0]
            if act_idx.size == 0:
                break
            u_part = rng.random(act_idx.size)
            u_cand = rng.random((act_idx.size, n_cand))
            stats.draws += int(act_idx.size)
            for j, i in enumerate(act_idx):
                self._seed_ep.send(
                    ids[int(i)],
                    AcquireTicket(
                        round_no=round_no,
                        u_part=float(u_part[j]),
                        u_cand=[float(x) for x in u_cand[j]],
                    ),
                )
            reports = await self._collect(int(act_idx.size), AcquireReport)
            report_of = {src: msg for src, msg in reports}
            success = np.zeros(act_idx.size, dtype=bool)
            for j, i in enumerate(act_idx):
                report = report_of[ids[int(i)]]
                success[j] = report.success
                stats.links_placed += int(report.success)
                stats.refusals += int(report.refusals)
                stats.empty_partition_draws += int(report.empty_draw)
                stats.conflicts += int(report.conflict)
            fail = ~success
            slot_attempts[act_idx[success]] = 0
            slot_attempts[act_idx[fail]] += 1
            gave = fail & (slot_attempts[act_idx] > config.link_retries)
            stats.slots_given_up += int(gave.sum())
            acquiring[act_idx[gave]] = False
            out_count[act_idx[success]] += 1
            filled = success & (out_count[act_idx] >= target[act_idx])
            acquiring[act_idx[filled]] = False
            round_no += 1
        return stats

    # -- plumbing ------------------------------------------------------

    async def _collect(
        self, count: int, kind: type[Message]
    ) -> list[tuple[int, Message]]:
        """Await ``count`` seed-bound messages of ``kind``."""
        out: list[tuple[int, Message]] = []
        while len(out) < count:
            src, message = await self._seed_ep.recv()
            self._seed_ep.done()
            if isinstance(message, kind):
                out.append((src, message))
        return out

    def _aggregate_free(self) -> LinkAcquisitionStats:
        """Sum the per-peer join counters into engine-shaped stats."""
        stats = LinkAcquisitionStats()
        for node in self.nodes:
            join = node.join
            if join is None:
                continue
            stats.links_placed += join.links_placed
            stats.slots_given_up += join.slots_given_up
            stats.draws += join.draws
            stats.refusals += join.refusals
            stats.empty_partition_draws += join.empty_partition_draws
            stats.conflicts += join.conflicts
        return stats
