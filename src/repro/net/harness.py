"""Boot a network, run it to quiescence, validate the topology.

:class:`NetHarness` owns the seed side of the runtime: it registers the
seed endpoint (:data:`SEED_ID`), boots N :class:`~repro.net.node.NetNode`
tasks, answers the bootstrap handshake, and drives construction to
quiescence. Two build disciplines:

* **free** — peers join concurrently under their own labelled RNG
  streams; the harness only deals membership and collects ``JoinDone``.
  Runs over the memory transport (any delivery order) and over TCP.
* **lockstep** (memory transport only) — the harness is the
  *coordinator*: it consumes one construction stream in the batched
  engine's exact draw layout (caps, positions, one uniform matrix per
  estimation level over the active rows in ascending row order, one
  priority shuffle, one partition + candidate draw per acquisition
  round) and deals the uniforms to peers as RNG tickets. Peers decide
  everything locally from their directory; the transport's superstep
  barrier gives replies snapshot semantics and replays commits in
  priority order. The resulting topology and
  :class:`~repro.core.construction.LinkAcquisitionStats` are
  **bit-identical** to :meth:`BatchConstructionEngine.grow
  <repro.engine.construct.BatchConstructionEngine.grow>` /
  :meth:`rewire <repro.engine.construct.BatchConstructionEngine.rewire>`
  on the same seed — the oracle-equivalence contract of ``docs/net.md``.

A third discipline rides on top of free mode when
:attr:`NetConfig.detector` is set: the harness is the **membership
authority**. ``start_detector()`` arms per-peer probe schedules; peers
whose probes time out send ``Suspect`` reports to the seed, which
tallies distinct reporters and — at quorum — evicts the target,
rebuilds its directory and broadcasts ``Dead`` so every live peer
rebuilds its own. ``kill()`` crashes peers silently (they detach from
the transport, so everyone else must *detect* the death), and
``await_evictions()`` / ``membership_agreement()`` observe the
detection pipeline end to end.

The facade is synchronous (one private :class:`asyncio.Runner` carries
the loop across calls) so the test suite needs no asyncio plugin::

    harness = NetHarness(NetConfig(lockstep=True, seed=7))
    stats = harness.build(500, UniformKeys(), ConstantDegrees(4))
    success, hops = harness.route_check(200)
    harness.close()

(The legacy keyword spelling ``NetHarness(OscarConfig(), seed=7,
lockstep=True)`` still works — it assembles the same ``NetConfig``.)
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass

import numpy as np

from ..config import OscarConfig
from ..core.construction import LinkAcquisitionStats
from ..degree import DegreeDistribution, assign_caps
from ..errors import ConfigError, SimulationError
from ..protocol.directory import Directory
from ..protocol.messages import (
    AcquireReport,
    AcquireTicket,
    BeginAcquire,
    Dead,
    DirectoryUpdate,
    EstimateLevel,
    EstimateReport,
    Hello,
    JoinDone,
    Kill,
    Message,
    ResetLinks,
    Rewire,
    RouteDone,
    RouteProbe,
    StartDetector,
    Suspect,
    Welcome,
)
from ..rng import split
from ..workloads import KeyDistribution
from .codec import get_codec
from .config import NetConfig
from .node import NetNode
from .transport import MemoryTransport, TcpEndpoint

__all__ = ["NetHarness", "SEED_ID", "TopologySummary"]

SEED_ID = -1
"""The seed node's transport id (peers are 0..n-1)."""


@dataclass(frozen=True)
class TopologySummary:
    """What a finished run looks like, in one verifiable value."""

    n: int
    links: int
    gave_up: int
    cap_violations: int
    routes_attempted: int
    routes_delivered: int
    mean_hops: float
    messages: int
    generations: int
    directory_mismatches: int = 0

    @property
    def route_success(self) -> float:
        """Fraction of probes delivered to the responsible peer."""
        if not self.routes_attempted:
            return 1.0
        return self.routes_delivered / self.routes_attempted


class NetHarness:
    """Seed-side driver: boot peers, build, rewire, probe, extract.

    Args:
        config: A :class:`~repro.net.config.NetConfig` carrying every
            knob (the redesigned surface), or — legacy spelling — the
            bare :class:`~repro.config.OscarConfig`, with the remaining
            knobs as keywords. Both forms are validated by
            ``NetConfig`` with :class:`~repro.errors.ConfigError`.
        seed / lockstep / delivery / transport / codec: Legacy keyword
            knobs; forbidden when ``config`` is already a ``NetConfig``
            (one source of truth — see :class:`NetConfig` for their
            meaning).
    """

    _KW_DEFAULTS = {
        "seed": 0,
        "lockstep": False,
        "delivery": None,
        "transport": "memory",
        "codec": "json",
    }

    def __init__(
        self,
        config: NetConfig | OscarConfig | None = None,
        *,
        seed: int = 0,
        lockstep: bool = False,
        delivery: str | None = None,
        transport: str = "memory",
        codec: str = "json",
    ) -> None:
        if isinstance(config, NetConfig):
            passed = {
                "seed": seed,
                "lockstep": lockstep,
                "delivery": delivery,
                "transport": transport,
                "codec": codec,
            }
            overrides = [k for k, v in passed.items() if v != self._KW_DEFAULTS[k]]
            if overrides:
                raise ConfigError(
                    "knobs must live inside the NetConfig, not ride along as "
                    f"keywords; got both a NetConfig and {overrides}"
                )
            net_config = config
        else:
            net_config = NetConfig(
                overlay=config or OscarConfig(),
                seed=int(seed),
                lockstep=bool(lockstep),
                delivery=delivery,
                transport=transport,
                codec=codec,
            )
        self.net_config = net_config
        self.config = net_config.overlay
        self.seed = net_config.seed
        self.lockstep = net_config.lockstep
        self.transport_kind = net_config.transport
        self.delivery = net_config.resolved_delivery
        self.codec_name = net_config.codec
        self.detector_config = net_config.detector
        self.nodes: list[NetNode] = []
        self.directory: Directory | None = None
        self.stats = LinkAcquisitionStats()
        self._runner = asyncio.Runner()
        self._transport: MemoryTransport | None = None
        self._seed_ep = None
        self._tasks: list[asyncio.Task] = []
        self._epoch = 0
        self._probe_id = 0
        self._routes = (0, 0, 0)  # attempted, delivered, total hops
        self._closed = False
        # membership-authority state (used only when detector is set)
        self._detector_on = False
        self._killed: set[int] = set()
        self._evicted: set[int] = set()
        self._suspects: dict[int, set[int]] = {}

    # -- sync facade ---------------------------------------------------

    def __enter__(self) -> "NetHarness":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def build(
        self,
        n: int,
        keys: KeyDistribution,
        degrees: DegreeDistribution,
        paired_caps: bool = True,
        kill_mid_join: tuple[int, ...] = (),
    ) -> LinkAcquisitionStats:
        """Draw a population and build the overlay to quiescence.

        The population draw consumes ``split(seed, "join")`` exactly as
        :meth:`BatchConstructionEngine.grow` growing a fresh overlay
        does (caps first, then positions with in-batch collision
        rejection) — in lockstep mode the same generator then feeds the
        coordinator, completing the engine's stream layout.

        ``kill_mid_join`` crashes those peer ids right after the
        directory broadcast, i.e. *while everyone is still joining*:
        negotiations with the victims run into probe silence and are
        resolved by the (detector-armed) reply timers, so the build
        still quiesces. Requires ``NetConfig.detector`` — without
        timers a request to a dead candidate would hang forever.
        """
        if n < 2:
            raise SimulationError("a network needs at least 2 peers")
        kill_mid_join = tuple(int(i) for i in kill_mid_join)
        if kill_mid_join:
            if self.detector_config is None:
                raise ConfigError(
                    "kill_mid_join needs NetConfig.detector set: dead-peer "
                    "negotiations only resolve via the reply timers"
                )
            bad = [i for i in kill_mid_join if not 0 <= i < n]
            if bad:
                raise ConfigError(f"kill_mid_join ids out of range [0, {n}): {bad}")
            if len(set(kill_mid_join)) >= n - 1:
                raise ConfigError("kill_mid_join must leave at least 2 peers alive")
        rng = split(self.seed, "join")
        caps_in, caps_out = assign_caps(degrees, rng, n, paired=paired_caps)
        positions = self._draw_positions(rng, keys, n)
        self.stats = self._runner.run(
            self._build_async(n, positions, caps_in, caps_out, rng, kill_mid_join)
        )
        return self.stats

    def rewire(self) -> LinkAcquisitionStats:
        """One global rewiring epoch over the booted network.

        Lockstep mode consumes a fresh ``split(seed, "rewire")`` stream
        in the engine's :meth:`~BatchConstructionEngine.rewire` layout;
        free mode bumps the epoch label of every peer's own stream.
        """
        if self.directory is None:
            raise SimulationError("build() the network before rewiring it")
        self._epoch += 1
        self.stats = self._runner.run(self._rewire_async())
        return self.stats

    def route_check(
        self,
        n_probes: int,
        budget: int | None = None,
        timeout_s: float | None = None,
    ) -> tuple[float, float]:
        """Probe ``n_probes`` random keys from random peers via real
        ``RouteProbe`` hops; returns ``(success rate, mean hops)``.

        A probe only counts as delivered when it terminates ``ok`` at
        exactly the peer :meth:`Directory.successor_of_key` names —
        judged against the harness's *current* directory, so after an
        eviction the responsibility of the dead peer's arc has moved to
        its successor. ``timeout_s`` bounds each probe's round trip
        (defaulting to 2 s once the detector is running — a probe that
        lands on a dead-but-undetected peer is silently dropped and
        must not hang the check); timed-out probes count attempted but
        undelivered.
        """
        if self.directory is None:
            raise SimulationError("build() the network before routing on it")
        if timeout_s is None and self._detector_on:
            timeout_s = 2.0
        return self._runner.run(self._route_async(n_probes, budget, timeout_s))

    def out_links(self) -> dict[int, list[int]]:
        """``node id -> out-link ids`` in placement order."""
        return {node.node_id: list(node.out_links) for node in self.nodes}

    def in_degrees(self) -> dict[int, int]:
        """``node id -> live in-degree``."""
        return {node.node_id: node.in_degree for node in self.nodes}

    def summary(self) -> TopologySummary:
        """Snapshot the run (topology + probe + transport counters).

        Topology counters cover the *live* population (killed and
        evicted peers' links no longer exist); without kills that is
        every peer, exactly as before the membership redesign.
        """
        attempted, delivered, hops = self._routes
        transport = self._transport
        live = [
            node
            for node in self.nodes
            if node.node_id not in self._killed and node.node_id not in self._evicted
        ]
        return TopologySummary(
            n=len(live),
            links=sum(len(node.out_links) for node in live),
            gave_up=self.stats.slots_given_up,
            cap_violations=sum(1 for node in live if node.in_degree > node.cap_in),
            routes_attempted=attempted,
            routes_delivered=delivered,
            mean_hops=hops / delivered if delivered else 0.0,
            messages=transport.messages_delivered if transport else 0,
            generations=transport.generations if transport else 0,
            directory_mismatches=self.membership_agreement(),
        )

    @property
    def probes_dropped(self) -> int:
        """Ping/Pong frames the lossy probe plane has eaten so far (0
        without a memory transport or with ``NetConfig.loss == 0``)."""
        transport = self._transport
        return transport.probes_dropped if transport is not None else 0

    def close(self) -> None:
        """Tear down tasks, transports and the private event loop."""
        if self._closed:
            return
        self._closed = True
        try:
            self._runner.run(self._close_async())
        finally:
            self._runner.close()

    # -- population draw (engine grow layout) --------------------------

    def _draw_positions(
        self, rng: np.random.Generator, keys: KeyDistribution, count: int
    ) -> np.ndarray:
        """Engine ``_draw_positions`` over an empty ring: bulk draws with
        in-batch dedup keeping first occurrences."""
        accepted: list[float] = []
        seen: set[float] = set()
        need = count
        while need > 0:
            draw = np.asarray(keys.sample(rng, need), dtype=float)
            for value in draw:
                position = float(value)
                if position in seen:
                    continue
                seen.add(position)
                accepted.append(position)
            need = count - len(accepted)
        return np.asarray(accepted, dtype=float)

    # -- async internals -----------------------------------------------

    async def _build_async(
        self,
        n: int,
        positions: np.ndarray,
        caps_in: np.ndarray,
        caps_out: np.ndarray,
        rng: np.random.Generator,
        kill_mid_join: tuple[int, ...] = (),
    ) -> LinkAcquisitionStats:
        if self.transport_kind == "tcp":
            return await self._build_tcp(n, positions, caps_in, caps_out)
        transport = MemoryTransport(
            mode=self.delivery, seed=self.seed, loss=self.net_config.loss
        )
        self._transport = transport
        self._seed_ep = transport.endpoint(SEED_ID)
        self.directory = Directory(range(n), positions)
        transport.start()
        loop = asyncio.get_running_loop()
        for i in range(n):
            node = NetNode(
                transport.endpoint(i),
                positions[i],
                int(caps_in[i]),
                int(caps_out[i]),
                SEED_ID,
                config=self.config,
                net_seed=self.seed,
                lockstep=self.lockstep,
                directory=self.directory,  # one shared object at scale
                detector=self.detector_config,
            )
            self.nodes.append(node)
            self._tasks.append(loop.create_task(node.run()))
        await self._collect(n, Hello)
        pairs = self.directory.to_pairs()
        for node in self.nodes:
            self._seed_ep.send(node.node_id, Welcome(node_id=node.node_id, peers=[]))
        for node in self.nodes:
            self._seed_ep.send(node.node_id, DirectoryUpdate(peers=pairs, addrs=[]))
        if self.lockstep:
            return await self._coordinate(rng, list(range(n)))
        if kill_mid_join:
            # Buffered after the directory broadcast: every peer starts
            # joining, then the victims die in the following generation.
            for victim in kill_mid_join:
                self._killed.add(victim)
                self._seed_ep.send(victim, Kill())
        await self._collect_join({i for i in range(n) if i not in self._killed})
        return self._aggregate_free()

    async def _build_tcp(
        self, n: int, positions: np.ndarray, caps_in: np.ndarray, caps_out: np.ndarray
    ) -> LinkAcquisitionStats:
        codec = get_codec(self.codec_name)
        self._seed_ep = TcpEndpoint(SEED_ID, codec=codec)
        await self._seed_ep.start()
        seed_addr = self._seed_ep.address
        loop = asyncio.get_running_loop()
        for i in range(n):
            endpoint = TcpEndpoint(-2 - i, codec=get_codec(self.codec_name))
            endpoint.learn_addresses([(SEED_ID, *seed_addr)])
            node = NetNode(
                endpoint,
                positions[i],
                int(caps_in[i]),
                int(caps_out[i]),
                SEED_ID,
                config=self.config,
                net_seed=self.seed,
            )
            self.nodes.append(node)
            self._tasks.append(loop.create_task(node.run()))
        # Ids go out in Hello arrival order — construction order under a
        # deterministic transport, socket order here.
        hellos = await self._collect(n, Hello)
        pairs: list[list[object]] = []
        addrs: list[list[object]] = []
        for node_id, (src, hello) in enumerate(hellos):
            self._seed_ep.learn_addresses([(src, hello.host, hello.port)])
            self._seed_ep.learn_addresses([(node_id, hello.host, hello.port)])
            pairs.append([node_id, float(hello.position)])
            addrs.append([node_id, hello.host, hello.port])
            self._seed_ep.send(src, Welcome(node_id=node_id, peers=[]))
        self.directory = Directory.from_pairs(pairs)
        for node_id in range(n):
            self._seed_ep.send(node_id, DirectoryUpdate(peers=pairs, addrs=addrs))
        await self._collect(n, JoinDone)
        return self._aggregate_free()

    async def _rewire_async(self) -> LinkAcquisitionStats:
        assert self.directory is not None
        if self.lockstep:
            for node in self.nodes:
                self._seed_ep.send(node.node_id, ResetLinks(epoch=self._epoch))
            rng = split(self.seed, "rewire")
            return await self._coordinate(rng, list(range(self.directory.m)))
        live = self._live_ids()
        for node_id in live:
            self._seed_ep.send(node_id, Rewire(epoch=self._epoch))
        await self._collect_join(set(live))
        return self._aggregate_free()

    async def _route_async(
        self, n_probes: int, budget: int | None, timeout_s: float | None
    ) -> tuple[float, float]:
        directory = self.directory
        assert directory is not None
        m = directory.m
        if budget is None:
            budget = 4 * max(1, math.ceil(math.log2(max(2, m)))) + 8
        rng = split(self.seed, "net", "routes", self._probe_id)
        attempted, delivered, hops_total = self._routes
        for __ in range(int(n_probes)):
            probe_id = self._probe_id
            self._probe_id += 1
            target = float(rng.random())
            start = directory.id_at(int(rng.integers(0, m)))
            expected = directory.successor_of_key(target)
            self._seed_ep.send(
                start,
                RouteProbe(
                    probe_id=probe_id, target=target, origin=SEED_ID, hops=0, budget=budget
                ),
            )
            message: Message | None = None
            while True:
                try:
                    __, message = await self._recv_seed(timeout_s)
                except asyncio.TimeoutError:
                    # The probe reached a dead-but-not-yet-evicted peer
                    # and was silently dropped: attempted, undelivered.
                    message = None
                    break
                if isinstance(message, RouteDone) and message.probe_id == probe_id:
                    break
            attempted += 1
            if message is not None and message.ok and message.delivered == expected:
                delivered += 1
                hops_total += message.hops
        self._routes = (attempted, delivered, hops_total)
        success = delivered / attempted if attempted else 1.0
        return success, (hops_total / delivered if delivered else 0.0)

    async def _close_async(self) -> None:
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        if self._transport is not None:
            self._transport.stop()
        if self._seed_ep is not None:
            await self._seed_ep.close()
        for node in self.nodes:
            await node.endpoint.close()

    # -- the lockstep coordinator (engine-exact draw layout) -----------

    async def _coordinate(
        self, rng: np.random.Generator, rows: list[int]
    ) -> LinkAcquisitionStats:
        """Deal RNG tickets in :class:`BatchConstructionEngine`'s layout.

        ``rows`` are the requesting directory rows in ascending order —
        the same index space as the engine's ``LiveView`` rows, so every
        uniform lands on the peer the engine would have spent it on.
        """
        config = self.config
        directory = self.directory
        assert directory is not None
        stats = LinkAcquisitionStats()
        m = directory.m
        n = len(rows)
        ids = [directory.id_at(r) for r in rows]

        # Estimation: one (active, sample_size) matrix per level, rows
        # dealt in ascending row order; peers report level survival.
        k = config.partitions_for(max(1, m))
        active = [True] * n
        for level in range(max(0, k - 1)):
            act = [i for i in range(n) if active[i]]
            if not act:
                break
            u = rng.random((len(act), config.sample_size))
            for j, i in enumerate(act):
                self._seed_ep.send(
                    ids[i],
                    EstimateLevel(level=level, u_row=[float(x) for x in u[j]]),
                )
            reports = await self._collect(len(act), EstimateReport)
            cont = {src: msg.cont for src, msg in reports}
            for i in act:
                active[i] = cont[ids[i]]

        # One priority shuffle over the requesting rows.
        order = np.asarray(rows, dtype=np.int64).copy()
        rng.shuffle(order)
        priority_of = np.full(m, -1, dtype=np.int64)
        priority_of[order] = np.arange(order.size, dtype=np.int64)
        for i in range(n):
            self._seed_ep.send(ids[i], BeginAcquire(priority=int(priority_of[rows[i]])))

        # Acquisition rounds: one partition + candidate draw per active
        # requester per round; the same retry/fill bookkeeping as
        # BatchConstructionEngine._acquire over the peers' reports.
        target = np.asarray([self.nodes[i].cap_out for i in ids], dtype=np.int64)
        if not config.respect_out_caps:
            target = np.maximum(target, 1)
        n_cand = 2 if config.power_of_two else 1
        out_count = np.zeros(n, dtype=np.int64)
        slot_attempts = np.zeros(n, dtype=np.int64)
        acquiring = out_count < target
        round_no = 0
        while True:
            act_idx = np.nonzero(acquiring)[0]
            if act_idx.size == 0:
                break
            u_part = rng.random(act_idx.size)
            u_cand = rng.random((act_idx.size, n_cand))
            stats.draws += int(act_idx.size)
            for j, i in enumerate(act_idx):
                self._seed_ep.send(
                    ids[int(i)],
                    AcquireTicket(
                        round_no=round_no,
                        u_part=float(u_part[j]),
                        u_cand=[float(x) for x in u_cand[j]],
                    ),
                )
            reports = await self._collect(int(act_idx.size), AcquireReport)
            report_of = {src: msg for src, msg in reports}
            success = np.zeros(act_idx.size, dtype=bool)
            for j, i in enumerate(act_idx):
                report = report_of[ids[int(i)]]
                success[j] = report.success
                stats.links_placed += int(report.success)
                stats.refusals += int(report.refusals)
                stats.empty_partition_draws += int(report.empty_draw)
                stats.conflicts += int(report.conflict)
            fail = ~success
            slot_attempts[act_idx[success]] = 0
            slot_attempts[act_idx[fail]] += 1
            gave = fail & (slot_attempts[act_idx] > config.link_retries)
            stats.slots_given_up += int(gave.sum())
            acquiring[act_idx[gave]] = False
            out_count[act_idx[success]] += 1
            filled = success & (out_count[act_idx] >= target[act_idx])
            acquiring[act_idx[filled]] = False
            round_no += 1
        return stats

    # -- membership authority (detector mode) --------------------------

    def kill(self, node_ids: tuple[int, ...] | list[int]) -> None:
        """Crash peers silently: they detach from the transport and
        stop serving — no goodbye, no error; the rest of the network
        only learns of the deaths through probe timeouts. Requires a
        built memory-transport network."""
        if self.directory is None:
            raise SimulationError("build() the network before killing peers")
        if self.transport_kind != "memory":
            raise SimulationError("kill() requires the memory transport")
        ids = [int(i) for i in node_ids]
        known = {node.node_id for node in self.nodes}
        bad = [i for i in ids if i not in known]
        if bad:
            raise SimulationError(f"cannot kill unknown peers {bad}")
        self._runner.run(self._kill_async(ids))

    async def _kill_async(self, ids: list[int]) -> None:
        by_id = {node.node_id: task for node, task in zip(self.nodes, self._tasks)}
        tasks = []
        for node_id in ids:
            if node_id in self._killed:
                continue
            self._killed.add(node_id)
            self._seed_ep.send(node_id, Kill())
            tasks.append(by_id[node_id])
        if not tasks:
            return
        __, pending = await asyncio.wait(tasks, timeout=10.0)
        if pending:
            raise SimulationError(f"{len(pending)} victims did not stop within 10s")

    def start_detector(self) -> None:
        """Arm every live peer's probe schedule (broadcast
        ``StartDetector``). From here on the network is never quiescent
        — probes fly forever — and the seed acts as the membership
        authority, tallying ``Suspect`` reports into quorum evictions."""
        if self.directory is None:
            raise SimulationError("build() the network before starting detectors")
        if self.detector_config is None:
            raise ConfigError("start_detector() requires NetConfig.detector to be set")
        self._detector_on = True
        self._runner.run(self._start_detector_async())

    async def _start_detector_async(self) -> None:
        for node_id in self._live_ids():
            self._seed_ep.send(node_id, StartDetector())
        await asyncio.sleep(0)

    def await_evictions(self, node_ids: tuple[int, ...] | list[int], timeout_s: float = 30.0) -> list[int]:
        """Block until every id in ``node_ids`` has been quorum-evicted
        (raising :class:`SimulationError` at ``timeout_s``), then let
        the ``Dead`` broadcasts settle so live peers converge. Returns
        the evicted ids sorted."""
        if not self._detector_on:
            raise SimulationError("start_detector() before awaiting evictions")
        want = {int(i) for i in node_ids}
        return self._runner.run(self._await_evictions_async(want, float(timeout_s)))

    async def _await_evictions_async(self, want: set[int], timeout_s: float) -> list[int]:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while not want <= self._evicted:
            remaining = deadline - loop.time()
            if remaining <= 0.0:
                missing = sorted(want - self._evicted)
                raise SimulationError(
                    f"evictions timed out after {timeout_s}s; still live: {missing}"
                )
            try:
                await self._recv_seed(remaining)  # Suspects tallied inside
            except asyncio.TimeoutError:
                continue
        # Settle: drain stray suspects while the pump delivers the Dead
        # broadcasts, so membership_agreement() sees the converged view.
        settle_until = loop.time() + 0.25
        while loop.time() < settle_until:
            try:
                await self._recv_seed(max(0.01, settle_until - loop.time()))
            except asyncio.TimeoutError:
                break
        return sorted(want)

    def membership_agreement(self) -> int:
        """How many live peers' directories disagree with the seed's.

        The invariant the free-mode gate checks: after evictions settle
        (``await_evictions``), every live peer must have rebuilt its
        private directory to exactly the authority's member set — 0
        mismatches. During the detection lag the count is positive,
        which is the bounded staleness the detector grid measures.
        """
        if self.directory is None:
            raise SimulationError("build() the network before comparing directories")
        truth = {int(i) for i in self.directory.ids}
        mismatches = 0
        for node in self.nodes:
            if node.node_id in self._killed or node.node_id in self._evicted:
                continue
            view = node.directory
            if view is None or {int(i) for i in view.ids} != truth:
                mismatches += 1
        return mismatches

    def _live_ids(self) -> list[int]:
        return [
            node.node_id
            for node in self.nodes
            if node.node_id not in self._killed and node.node_id not in self._evicted
        ]

    def _on_suspect(self, src: int, message: Suspect) -> None:
        """Tally one monitor's report; evict at quorum."""
        target = int(message.target)
        if target in self._evicted or target == SEED_ID:
            return
        reporters = self._suspects.setdefault(target, set())
        reporters.add(int(src))
        quorum = self.detector_config.quorum if self.detector_config else 1
        if len(reporters) >= quorum:
            self._evict(target)

    def _evict(self, target: int) -> None:
        """Quorum reached: drop ``target`` and broadcast ``Dead``."""
        assert self.directory is not None
        self._evicted.add(target)
        self._suspects.pop(target, None)
        keep = [pair for pair in self.directory.to_pairs() if int(pair[0]) != target]
        self.directory = Directory.from_pairs(keep)
        for node_id in self._live_ids():
            self._seed_ep.send(node_id, Dead(targets=[target]))

    # -- plumbing ------------------------------------------------------

    async def _recv_seed(self, timeout_s: float | None = None) -> tuple[int, Message]:
        """One seed-bound message, with ``Suspect`` tallied in passing.

        Every seed receive funnels through here so the membership
        authority keeps working no matter which wait is active —
        ``Suspect`` reports arriving during a route check or a rewire
        still count toward quorum instead of being dropped.
        """
        if timeout_s is None:
            src, message = await self._seed_ep.recv()
        else:
            src, message = await asyncio.wait_for(self._seed_ep.recv(), timeout_s)
        self._seed_ep.done()
        if isinstance(message, Suspect):
            self._on_suspect(src, message)
        return src, message

    async def _collect(
        self, count: int, kind: type[Message]
    ) -> list[tuple[int, Message]]:
        """Await ``count`` seed-bound messages of ``kind``."""
        out: list[tuple[int, Message]] = []
        while len(out) < count:
            src, message = await self._recv_seed()
            if isinstance(message, kind):
                out.append((src, message))
        return out

    async def _collect_join(self, expected: set[int]) -> None:
        """Await one ``JoinDone`` from every id in ``expected``.

        Dead peers never report, so membership (not a bare count) is
        what quiesces a build with mid-join kills; the generous guard
        converts a hung build into a diagnosable failure instead of a
        silent test timeout.
        """
        pending = set(expected)
        while pending:
            try:
                src, message = await self._recv_seed(120.0)
            except asyncio.TimeoutError:
                raise SimulationError(
                    f"build did not quiesce: no JoinDone from {sorted(pending)}"
                ) from None
            if isinstance(message, JoinDone):
                pending.discard(int(src))

    def _aggregate_free(self) -> LinkAcquisitionStats:
        """Sum the per-peer join counters into engine-shaped stats."""
        stats = LinkAcquisitionStats()
        for node in self.nodes:
            join = node.join
            if join is None or node.node_id in self._killed:
                continue
            stats.links_placed += join.links_placed
            stats.slots_given_up += join.slots_given_up
            stats.draws += join.draws
            stats.refusals += join.refusals
            stats.empty_partition_draws += join.empty_partition_draws
            stats.conflicts += join.conflicts
        return stats
