"""Pluggable transports: deterministic in-memory queues and real TCP.

Every peer driver talks to an *endpoint* with one tiny surface —
``await recv()`` one message, ``send()`` any number of messages,
``done()`` when the triggering message is fully handled — so the same
:class:`~repro.net.node.NetNode` runs unchanged over both transports.

:class:`MemoryTransport` is a shared scheduler implementing seeded
deterministic delivery as *supersteps*: sends buffer centrally, and the
pump flushes a generation only when every handler has finished (the
``done()`` counter hits zero), delivering one message at a time and
waiting for it to be fully processed before the next. Three orderings:

* ``fifo`` — send order (the canonical deterministic schedule);
* ``random`` — each generation shuffled by a seeded generator
  (adversarial-but-reproducible delivery for invariant tests);
* ``lockstep`` — like fifo, except ``LinkCommit`` messages in a
  generation are delivered in ascending ``priority`` — exactly the
  sequential commit replay of the batched engine's acquisition round,
  which is what makes the lockstep oracle bit-exact.

The superstep barrier is also a protocol guarantee the harness leans
on: all messages *sent* in one generation are *processed* before any
message sent while handling them — e.g. every ``LinkReply`` of a round
precedes every ``LinkCommit``, giving replies snapshot semantics
without any explicit synchronization.

:class:`TcpEndpoint` is the real thing: one listening socket per peer,
lazily-dialed outgoing connections, frames via :mod:`~repro.net.codec`.
Delivery order is whatever the kernel provides — TCP runs free mode,
where equivalence is at the invariant level.
"""

from __future__ import annotations

import asyncio
from typing import Iterable

import numpy as np

from ..protocol.messages import LinkCommit, Message, Ping, Pong, message_from_wire
from ..rng import split
from .codec import Codec, get_codec

__all__ = ["MemoryEndpoint", "MemoryTransport", "TcpEndpoint"]


class MemoryTransport:
    """Shared superstep scheduler for in-process peers.

    Args:
        mode: ``"fifo"``, ``"random"`` or ``"lockstep"`` (see module
            docstring).
        seed: Seeds the ``random`` mode's delivery shuffle and the
            probe-plane loss stream (ignored by the deterministic
            delivery modes when ``loss`` is zero).
        loss: Probe-plane loss probability in ``[0, 1)``: each ``Ping``
            or ``Pong`` frame is independently dropped with this
            probability, drawn from the dedicated
            ``split(seed, "net", "loss")`` stream. Construction,
            routing and membership traffic is never dropped, and a
            zero ``loss`` consumes no draws at all — default runs stay
            bit-identical to the pre-loss transport.
    """

    def __init__(self, mode: str = "fifo", seed: int = 0, loss: float = 0.0) -> None:
        if mode not in ("fifo", "random", "lockstep"):
            raise ValueError(f"unknown delivery mode {mode!r}")
        if not (0.0 <= loss < 1.0):
            raise ValueError(f"loss must be in [0, 1), got {loss}")
        self.mode = mode
        self.loss = float(loss)
        self._rng = split(seed, "net", "delivery")
        self._loss_rng = split(seed, "net", "loss") if loss > 0.0 else None
        self._queues: dict[int, asyncio.Queue] = {}
        self._buffer: list[tuple[int, int, Message]] = []
        self._outstanding = 0
        self._drained = asyncio.Event()
        self._drained.set()
        self._work = asyncio.Event()
        self._pump_task: asyncio.Task | None = None
        self.messages_delivered = 0
        self.probes_dropped = 0
        self.generations = 0

    # -- endpoint surface ---------------------------------------------

    def endpoint(self, node_id: int) -> "MemoryEndpoint":
        """Register ``node_id`` and return its endpoint."""
        if node_id in self._queues:
            raise ValueError(f"node {node_id} already registered")
        queue: asyncio.Queue = asyncio.Queue()
        self._queues[node_id] = queue
        return MemoryEndpoint(self, node_id, queue)

    def detach(self, node_id: int) -> None:
        """Deregister ``node_id``: later sends to it silently vanish.

        This is the crashed-peer failure model — from every other
        peer's perspective the victim just stops answering, which is
        exactly the signal the failure detectors must turn into an
        eviction. Idempotent.
        """
        self._queues.pop(node_id, None)

    def send(self, src: int, dst: int, message: Message) -> None:
        """Buffer one message for the next delivery generation."""
        self._buffer.append((src, dst, message))
        self._work.set()

    def done_one(self) -> None:
        """A handler finished processing one delivered message."""
        self._outstanding -= 1
        if self._outstanding == 0:
            self._drained.set()

    # -- the pump ------------------------------------------------------

    def start(self) -> None:
        """Start the delivery pump on the running loop."""
        if self._pump_task is None:
            self._pump_task = asyncio.get_running_loop().create_task(self._pump())

    def stop(self) -> None:
        """Cancel the pump (idempotent)."""
        if self._pump_task is not None:
            self._pump_task.cancel()
            self._pump_task = None

    async def quiesce(self) -> None:
        """Wait until no message is buffered or being processed."""
        while self._buffer or self._outstanding:
            await self._drained.wait()
            if self._buffer:
                await asyncio.sleep(0)

    def _order(self, batch: list[tuple[int, int, Message]]) -> Iterable[tuple[int, int, Message]]:
        if self.mode == "random":
            order = self._rng.permutation(len(batch))
            return [batch[int(i)] for i in order]
        if self.mode == "lockstep":
            # Non-commits first in send order, then commits by priority:
            # the engine round's sequential commit replay.
            def key(entry: tuple[int, tuple[int, int, Message]]) -> tuple[int, int, int]:
                i, (__, ___, msg) = entry
                if isinstance(msg, LinkCommit):
                    return (1, msg.priority, i)
                return (0, 0, i)

            return [e for __, e in sorted(enumerate(batch), key=lambda p: key(p))]
        return batch

    async def _pump(self) -> None:
        while True:
            await self._drained.wait()
            if not self._buffer:
                self._work.clear()
                if not self._buffer:
                    await self._work.wait()
                continue
            batch, self._buffer = self._buffer, []
            self.generations += 1
            for src, dst, message in self._order(batch):
                queue = self._queues.get(dst)
                if queue is None:
                    continue
                if (
                    self._loss_rng is not None
                    and isinstance(message, (Ping, Pong))
                    and float(self._loss_rng.random()) < self.loss
                ):
                    self.probes_dropped += 1
                    continue
                self._outstanding += 1
                self._drained.clear()
                self.messages_delivered += 1
                queue.put_nowait((src, message))
                # One-at-a-time with ack: the next delivery waits until
                # this one is fully handled (its sends only buffer).
                await self._drained.wait()


class MemoryEndpoint:
    """One peer's handle on a :class:`MemoryTransport`."""

    __slots__ = ("_transport", "node_id", "_queue")

    def __init__(self, transport: MemoryTransport, node_id: int, queue: asyncio.Queue) -> None:
        self._transport = transport
        self.node_id = node_id
        self._queue = queue

    async def start(self) -> None:
        """Nothing to bring up — registration happened at creation."""

    async def close(self) -> None:
        """Nothing to tear down."""

    def detach(self) -> None:
        """Crash hook: deregister from the transport (see
        :meth:`MemoryTransport.detach`)."""
        self._transport.detach(self.node_id)

    @property
    def address(self) -> tuple[str, int]:
        """Placeholder address (the memory transport has no sockets)."""
        return ("", 0)

    def learn_addresses(self, addrs: Iterable[tuple[int, str, int]]) -> None:
        """No address book needed in process."""

    async def recv(self) -> tuple[int, Message]:
        """Next delivered ``(src, message)``."""
        return await self._queue.get()

    def send(self, dst: int, message: Message) -> None:
        """Buffer a message into the transport's next generation."""
        self._transport.send(self.node_id, dst, message)

    def done(self) -> None:
        """Acknowledge the current message as fully handled."""
        self._transport.done_one()


class TcpEndpoint:
    """One peer's localhost-TCP endpoint (listener + dialed connections).

    Args:
        node_id: This peer's id (stamped into outgoing envelopes). The
            seed's id is known up front; joining peers may re-identify
            after the seed assigns their id via ``set_node_id``.
        codec: Frame codec (default JSON; msgpack via ``get_codec``).
        host: Interface to bind (localhost only — this transport exists
            for same-machine experiments, not the open internet).
    """

    def __init__(self, node_id: int, codec: Codec | None = None, host: str = "127.0.0.1") -> None:
        self.node_id = int(node_id)
        self.codec = codec or get_codec("json")
        self._host = host
        self._server: asyncio.base_events.Server | None = None
        self._inbox: asyncio.Queue = asyncio.Queue()
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._addrs: dict[int, tuple[str, int]] = {}
        self._reader_tasks: set[asyncio.Task] = set()

    def set_node_id(self, node_id: int) -> None:
        """Adopt the seed-assigned id for subsequent envelopes."""
        self.node_id = int(node_id)

    async def start(self) -> None:
        """Bind the listening socket (port 0 = ephemeral)."""
        self._server = await asyncio.start_server(self._on_connection, self._host, 0)

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` of the listener."""
        assert self._server is not None, "endpoint not started"
        sock = self._server.sockets[0]
        return (self._host, int(sock.getsockname()[1]))

    def learn_addresses(self, addrs: Iterable[tuple[int, str, int]]) -> None:
        """Extend the address book (from ``Hello`` / ``DirectoryUpdate``)."""
        for node_id, host, port in addrs:
            if int(port):
                self._addrs[int(node_id)] = (str(host), int(port))

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                payload = await self.codec.read_frame(reader)
                if payload is None:
                    break
                self._inbox.put_nowait(
                    (int(payload["src"]), message_from_wire(payload["msg"]))
                )
        except asyncio.CancelledError:
            # Shutdown path: finish cleanly so the streams machinery
            # doesn't log a cancelled handler at loop close.
            pass
        finally:
            writer.close()

    async def recv(self) -> tuple[int, Message]:
        """Next received ``(src, message)``."""
        return await self._inbox.get()

    def send(self, dst: int, message: Message) -> None:
        """Frame and write to ``dst`` (dialing on first use).

        Sends are fire-and-forget: the write is scheduled on the loop
        so handlers stay synchronous, mirroring the memory endpoint.
        """
        task = asyncio.get_running_loop().create_task(self._send(int(dst), message))
        self._reader_tasks.add(task)
        task.add_done_callback(self._reader_tasks.discard)

    async def _send(self, dst: int, message: Message) -> None:
        writer = self._writers.get(dst)
        if writer is None:
            addr = self._addrs.get(dst)
            if addr is None:
                raise ConnectionError(f"no known address for node {dst}")
            __, writer = await asyncio.open_connection(addr[0], addr[1])
            self._writers[dst] = writer
        writer.write(self.codec.encode({"src": self.node_id, "msg": message.to_wire()}))
        await writer.drain()

    def done(self) -> None:
        """No superstep accounting over TCP."""

    async def close(self) -> None:
        """Close the listener and every dialed connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        for task in list(self._reader_tasks):
            task.cancel()
