"""Successor-list replication: k copies of every item, churn-surviving.

:class:`~repro.index.store.DistributedIndex` places each item on exactly
one peer, so a single departure loses data until the reactive
``rebalance_after_churn`` notices. This module adds the proactive
story every data-oriented overlay ships: each item lives on its
**owner** (the first believed-live clockwise successor of its key) plus
``k - 1`` further clockwise believed-live successors, and a periodic
**re-replication pass** — wired into
:class:`~repro.engine.churn.SteadyStateChurnEngine`'s repair epoch —
restores the replication factor after deaths.

The pass acts on a :class:`~repro.membership.views.MembershipView`, not
on ground truth, which is the whole point:

* under :class:`~repro.membership.views.OracleView` belief **is** truth,
  so every pass lands all ``k`` copies on truth-live peers and an item
  can only die when all ``k`` of its holders crash within one repair
  interval — fewer than ``k`` departures per interval guarantees zero
  loss (the property ``tests/test_replication.py`` pins);
* under :class:`~repro.membership.probe.ProbeView` belief lags truth by
  the detection lag: the pass happily targets crashed-but-undetected
  peers, and a copy "transferred" to a dead peer never materializes —
  a **phantom replica**. Detection lag thereby becomes measurable
  data-risk exposure (phantom counts, under-replication histograms,
  and real loss once lag eats a whole successor list).

Storage is struct-of-arrays — item keys, ids and a ``(n_items, k)``
holder matrix — so seeding, membership checks and the re-replication
pass are single numpy passes even at millions of items. The
``vectorized=False`` reference twin replays the same decisions with
pure-Python loops and must stay **bit-identical** (holders, loss
counts, histograms); the differential suite asserts it.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..membership import MembershipView
    from ..ring import Ring

__all__ = ["ReplicationEpochStats", "ReplicatedStore"]


@dataclass(frozen=True)
class ReplicationEpochStats:
    """Outcome of one re-replication pass.

    Attributes:
        epoch: The churn epoch the pass ran in (0 for the seeding pass).
        items: Items surviving after the pass.
        items_lost: Items whose every replica was truth-dead when the
            pass ran — unrecoverable, removed from the catalog.
        placed: Replica copies actually materialized this pass (targets
            that were truth-live).
        phantom_replicas: Copies "transferred" to believed-live but
            truth-dead peers — the detection-lag data-risk exposure
            (always 0 under the oracle).
        under_k: Items holding fewer than ``k`` truth-live replicas
            *after* the pass (phantom targets leave gaps).
        histogram: ``histogram[r]`` = items with exactly ``r``
            truth-live replicas after the pass, ``r in 0..k``.
    """

    epoch: int
    items: int
    items_lost: int
    placed: int
    phantom_replicas: int
    under_k: int
    histogram: tuple[int, ...]

    def as_dict(self) -> dict[str, object]:
        """Flat JSON-ready view (golden fixtures, benchmarks)."""
        return {
            "epoch": self.epoch,
            "items": self.items,
            "items_lost": self.items_lost,
            "placed": self.placed,
            "phantom_replicas": self.phantom_replicas,
            "under_k": self.under_k,
            "histogram": list(self.histogram),
        }


class ReplicatedStore:
    """A k-replicated item catalog over one ring.

    Args:
        ring: The overlay's :class:`~repro.ring.ring.Ring` (ground truth
            for whether a transfer target can actually receive a copy).
        k: Replication factor — owner plus ``k - 1`` further clockwise
            believed-live successors.
        vectorized: ``True`` runs the numpy kernels; ``False`` the
            bit-identical pure-Python reference twin.

    Attributes:
        item_keys: Sorted item positions on the unit circle (float,
            aligned with ``item_ids`` / ``holders``).
        item_ids: Stable per-item identifiers (survive catalog
            compaction when neighbors are lost).
        holders: ``(n_items, k)`` int64 matrix of node ids truly holding
            a copy; ``-1`` marks an empty replica slot.
        data_version: Monotonic counter bumped whenever stored results
            may change (seeding, puts, every re-replication pass) — the
            result-cache invalidation hook.
        items_lost_total: Cumulative unrecoverable losses.
        history: Every :class:`ReplicationEpochStats` recorded so far.
    """

    def __init__(self, ring: "Ring", k: int = 3, vectorized: bool = True) -> None:
        if k < 1:
            raise ConfigError(f"replication factor k must be >= 1, got {k}")
        self.ring = ring
        self.k = int(k)
        self.vectorized = bool(vectorized)
        self.item_keys = np.empty(0, dtype=float)
        self.item_ids = np.empty(0, dtype=np.int64)
        self.holders = np.empty((0, self.k), dtype=np.int64)
        self.data_version = 0
        self.items_lost_total = 0
        self.history: list[ReplicationEpochStats] = []
        self._next_item_id = 0

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    @property
    def item_count(self) -> int:
        """Items currently surviving in the catalog."""
        return int(self.item_keys.size)

    def _believed_ring(self, view: "MembershipView") -> tuple[np.ndarray, np.ndarray]:
        """``(positions, ids)`` of the believed-live peers, ring order.

        ``view.live_ids()`` answers in ring (position) order — a subset
        of ``ring.ids_array(live_only=False)`` in the same order — so a
        membership mask recovers the aligned positions without a sort.
        """
        all_ids = self.ring.ids_array(live_only=False)
        all_pos = self.ring.positions_array(live_only=False)
        believed = view.live_ids()
        if believed.size == all_ids.size:
            return all_pos, all_ids
        mask = np.isin(all_ids, believed, assume_unique=True)
        return all_pos[mask], all_ids[mask]

    def successor_targets(self, keys: np.ndarray, view: "MembershipView") -> np.ndarray:
        """First ``k`` believed-live clockwise successors of each key.

        Column 0 is the believed owner (``successor_of_key`` over the
        believed-live set); columns pad with ``-1`` when fewer than
        ``k`` believed-live peers exist. Vectorized and reference paths
        produce identical matrices.
        """
        keys = np.asarray(keys, dtype=float)
        b_pos, b_ids = self._believed_ring(view)
        if b_ids.size == 0:
            raise ConfigError("no believed-live peers to place replicas on")
        k_eff = min(self.k, int(b_ids.size))
        targets = np.full((keys.size, self.k), -1, dtype=np.int64)
        if self.vectorized:
            idx = np.searchsorted(b_pos, keys, side="left")
            rows = (idx[:, None] + np.arange(k_eff)[None, :]) % b_ids.size
            targets[:, :k_eff] = b_ids[rows]
        else:
            positions = [float(p) for p in b_pos]
            ids = [int(i) for i in b_ids]
            for row, key in enumerate(keys):
                start = bisect.bisect_left(positions, float(key))
                for col in range(k_eff):
                    targets[row, col] = ids[(start + col) % len(ids)]
        return targets

    def truth_live_mask(self, node_ids: np.ndarray) -> np.ndarray:
        """Element-wise "is this holder truth-alive" over an id array
        (``-1`` slots and compacted ids are dead). Vectorized via a
        sorted-membership gather; the reference twin asks the ring one
        id at a time — identical masks."""
        if self.vectorized:
            live = np.sort(self.ring.ids_array(live_only=True))
            flat = node_ids.reshape(-1)
            if live.size == 0:
                return np.zeros(node_ids.shape, dtype=bool)
            idx = np.minimum(np.searchsorted(live, flat), live.size - 1)
            return ((flat >= 0) & (live[idx] == flat)).reshape(node_ids.shape)
        mask = np.zeros(node_ids.shape, dtype=bool)
        flat = node_ids.reshape(-1)
        out = mask.reshape(-1)
        for i, node_id in enumerate(flat):
            node_id = int(node_id)
            if node_id >= 0 and node_id in self.ring and self.ring.is_alive(node_id):
                out[i] = True
        return mask

    def seed_items(self, keys: Sequence[float] | np.ndarray, view: "MembershipView") -> int:
        """Bulk-publish items at ``keys``; returns how many were placed.

        Keys are deduplicated and the catalog kept key-sorted (exact-key
        lookups are a ``searchsorted``). Each item lands on its first
        ``k`` believed-live successors; copies only materialize on
        truth-live targets (a believed-live-but-dead target yields a
        phantom, exactly like the re-replication pass). Records an
        epoch-0 :class:`ReplicationEpochStats` and bumps
        ``data_version``.
        """
        keys = np.unique(np.asarray(keys, dtype=float))
        if self.item_keys.size:
            keys = keys[~np.isin(keys, self.item_keys)]
        ids = np.arange(self._next_item_id, self._next_item_id + keys.size, dtype=np.int64)
        self._next_item_id += int(keys.size)
        targets = self.successor_targets(keys, view)
        alive = self.truth_live_mask(targets)
        holders = np.where(alive, targets, -1)
        if self.item_keys.size:
            merged = np.concatenate([self.item_keys, keys])
            order = np.argsort(merged, kind="stable")
            self.item_keys = merged[order]
            self.item_ids = np.concatenate([self.item_ids, ids])[order]
            self.holders = np.concatenate([self.holders, holders], axis=0)[order]
        else:
            self.item_keys = keys
            self.item_ids = ids
            self.holders = holders
        self.data_version += 1
        phantom = int(((targets >= 0) & ~alive).sum())
        self._record(epoch=0, items_lost=0, placed=int(alive.sum()), phantom=phantom)
        return int(keys.size)

    # ------------------------------------------------------------------
    # the re-replication pass
    # ------------------------------------------------------------------

    def rereplicate(self, view: "MembershipView", epoch: int) -> ReplicationEpochStats:
        """One repair-epoch pass: drop the dead, restore ``k`` copies.

        For every item: if **no** current holder is truth-alive the item
        is unrecoverable — removed from the catalog and counted lost.
        Survivors move to the first ``k`` believed-live successors of
        their key (the successor-list handoff); a copy lands only where
        the target is truth-alive, so believed-live-but-dead targets
        leave phantom gaps until a later pass (after eviction) fills
        them. Consumes no randomness, never touches the ring — running
        the pass cannot perturb the churn engine's RNG streams or
        topology. Bumps ``data_version``.
        """
        if self.item_keys.size == 0:
            stats = self._record(epoch=int(epoch), items_lost=0, placed=0, phantom=0)
            self.data_version += 1
            return stats
        has_source = self.truth_live_mask(self.holders).any(axis=1)
        lost = int((~has_source).sum())
        if lost:
            self.item_keys = self.item_keys[has_source]
            self.item_ids = self.item_ids[has_source]
            self.holders = self.holders[has_source]
            self.items_lost_total += lost
        if self.item_keys.size:
            targets = self.successor_targets(self.item_keys, view)
            alive = self.truth_live_mask(targets)
            self.holders = np.where(alive, targets, -1)
            placed = int(alive.sum())
            phantom = int(((targets >= 0) & ~alive).sum())
        else:
            placed = phantom = 0
        self.data_version += 1
        return self._record(epoch=int(epoch), items_lost=lost, placed=placed, phantom=phantom)

    # ------------------------------------------------------------------
    # lookup + observability
    # ------------------------------------------------------------------

    def lookup_rows(self, keys: np.ndarray) -> np.ndarray:
        """Catalog row of each exact key (``-1`` when absent/lost)."""
        keys = np.asarray(keys, dtype=float)
        if self.item_keys.size == 0:
            return np.full(keys.shape, -1, dtype=np.int64)
        idx = np.minimum(np.searchsorted(self.item_keys, keys), self.item_keys.size - 1)
        return np.where(self.item_keys[idx] == keys, idx, -1)

    def live_replica_counts(self) -> np.ndarray:
        """Truth-live copies per item, aligned with ``item_keys``."""
        if self.item_keys.size == 0:
            return np.empty(0, dtype=np.int64)
        return self.truth_live_mask(self.holders).sum(axis=1).astype(np.int64)

    def replica_histogram(self) -> tuple[int, ...]:
        """``histogram[r]`` = items with ``r`` truth-live copies now."""
        counts = self.live_replica_counts()
        return tuple(int(c) for c in np.bincount(counts, minlength=self.k + 1))

    def under_replicated(self) -> int:
        """Items currently holding fewer than ``k`` truth-live copies."""
        if self.item_keys.size == 0:
            return 0
        return int((self.live_replica_counts() < self.k).sum())

    def _record(self, epoch: int, items_lost: int, placed: int, phantom: int) -> ReplicationEpochStats:
        histogram = self.replica_histogram()
        stats = ReplicationEpochStats(
            epoch=epoch,
            items=self.item_count,
            items_lost=items_lost,
            placed=placed,
            phantom_replicas=phantom,
            under_k=int(sum(histogram[: self.k])),
            histogram=histogram,
        )
        self.history.append(stats)
        return stats
