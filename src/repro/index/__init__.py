"""Application layer: a distributed key-value index over the overlay."""

from .store import DistributedIndex, IndexedItem, OperationReceipt

__all__ = ["DistributedIndex", "IndexedItem", "OperationReceipt"]
