"""Application layer: a distributed key-value index over the overlay."""

from .replication import ReplicatedStore, ReplicationEpochStats
from .store import DistributedIndex, IndexedItem, OperationReceipt

__all__ = [
    "DistributedIndex",
    "IndexedItem",
    "OperationReceipt",
    "ReplicatedStore",
    "ReplicationEpochStats",
]
