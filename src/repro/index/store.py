"""A key-value index over an overlay — the downstream-user API.

Data-oriented overlays are *indexes*: applications put items at keys,
get them back, and scan ranges. :class:`DistributedIndex` implements
that contract over either overlay facade, placing each item on the peer
responsible for its key (Chord's ``successor(key)`` rule), routing every
operation through the overlay, and accounting the messages spent — so
examples and tests can show end-to-end application cost, not just raw
hop counts.

Storage heterogeneity note: a peer's share of the key circle shrinks as
more peers take nearby keys, so publishing items under a skewed key
distribution while peers *join* under the same distribution yields the
balanced per-peer item loads the paper's storage argument predicts —
:meth:`DistributedIndex.load_by_peer` lets applications observe exactly
that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..errors import EmptyPopulationError, UnknownNodeError
from ..metrics import RoutableOverlay
from ..ring import in_closed_cw_range
from ..routing.range_query import RangeQueryResult, route_range
from ..types import Key, NodeId

__all__ = ["IndexedItem", "OperationReceipt", "DistributedIndex"]


@dataclass(frozen=True)
class IndexedItem:
    """One stored item: a key on the circle plus an opaque value."""

    key: Key
    value: object


@dataclass(frozen=True)
class OperationReceipt:
    """What one index operation cost and returned.

    Attributes:
        operation: ``"put"``, ``"get"`` or ``"range"``.
        messages: Overlay messages spent (search + sweep).
        owner: Responsible peer (put/get) — ``None`` for failures.
        items: Retrieved items (get/range).
        success: Whether routing delivered.
    """

    operation: str
    messages: int
    owner: NodeId | None = None
    items: tuple[IndexedItem, ...] = ()
    success: bool = True


@dataclass
class DistributedIndex:
    """Put/get/range over any routable overlay facade.

    Args:
        overlay: An :class:`~repro.core.OscarOverlay` or
            :class:`~repro.mercury.MercuryOverlay` (anything with
            ``ring``, ``pointers``, ``neighbors_of`` and ``route``).

    Attributes:
        stored: Per-peer storage (peer id -> list of items).
        receipts: Every operation's receipt, in order (cost journal).
    """

    overlay: RoutableOverlay
    stored: dict[NodeId, list[IndexedItem]] = field(default_factory=dict)
    receipts: list[OperationReceipt] = field(default_factory=list)

    def put(self, source: NodeId, key: Key, value: object, faulty: bool = False) -> OperationReceipt:
        """Store ``value`` under ``key``, routing from ``source``."""
        route = self.overlay.route(source, key, faulty=faulty)
        if not route.success or route.delivered_to is None:
            receipt = OperationReceipt("put", route.cost, None, (), False)
        else:
            item = IndexedItem(key=key, value=value)
            self.stored.setdefault(route.delivered_to, []).append(item)
            receipt = OperationReceipt("put", route.cost, route.delivered_to, (item,), True)
        self.receipts.append(receipt)
        return receipt

    def get(self, source: NodeId, key: Key, faulty: bool = False) -> OperationReceipt:
        """Fetch every item stored exactly at ``key``."""
        route = self.overlay.route(source, key, faulty=faulty)
        if not route.success or route.delivered_to is None:
            receipt = OperationReceipt("get", route.cost, None, (), False)
        else:
            hits = tuple(
                item for item in self.stored.get(route.delivered_to, []) if item.key == key
            )
            receipt = OperationReceipt("get", route.cost, route.delivered_to, hits, True)
        self.receipts.append(receipt)
        return receipt

    def range(self, source: NodeId, lo: Key, hi: Key, faulty: bool = False) -> OperationReceipt:
        """Fetch every item with key in ``[lo, hi]`` (wrapping allowed)."""
        result: RangeQueryResult = route_range(
            self.overlay.ring,
            self.overlay.pointers,  # type: ignore[attr-defined]
            self.overlay,  # type: ignore[arg-type]
            source,
            lo,
            hi,
            faulty=faulty,
        )
        if not result.success:
            receipt = OperationReceipt("range", result.total_cost, None, (), False)
        else:
            hits: list[IndexedItem] = []
            for owner in result.owners:
                for item in self.stored.get(owner, []):
                    # One shared closed-[lo, hi] predicate with
                    # chord.scatter_range — the PR 2 divergence point.
                    if in_closed_cw_range(item.key, lo, hi):
                        hits.append(item)
            receipt = OperationReceipt(
                "range", result.total_cost, result.owners[0], tuple(hits), True
            )
        self.receipts.append(receipt)
        return receipt

    # ------------------------------------------------------------------
    # bulk + introspection helpers
    # ------------------------------------------------------------------

    def put_many(
        self,
        source: NodeId,
        items: Iterable[tuple[Key, object]],
        faulty: bool = False,
    ) -> list[OperationReceipt]:
        """Store a batch, returning each receipt (cost journal keeps all)."""
        return [self.put(source, key, value, faulty=faulty) for key, value in items]

    def load_by_peer(self) -> dict[NodeId, int]:
        """Items per storing peer — the storage-balance diagnostic."""
        return {peer: len(items) for peer, items in self.stored.items()}

    def total_messages(self) -> int:
        """Messages spent by every operation so far."""
        return sum(r.messages for r in self.receipts)

    def items(self) -> Iterator[IndexedItem]:
        """All stored items, grouped by peer."""
        for bucket in self.stored.values():
            yield from bucket

    def item_count(self) -> int:
        """Total stored items."""
        return sum(len(bucket) for bucket in self.stored.values())

    def rebalance_after_churn(self) -> int:
        """Re-home items whose owner crashed; returns items moved.

        Models successor-takeover replication: items on a dead peer move
        to the live peer now responsible for their key. (Real systems
        replicate proactively; the end state is the same.)
        """
        ring = self.overlay.ring
        moved = 0
        for peer in list(self.stored):
            try:
                alive = ring.is_alive(peer)
            except UnknownNodeError:
                alive = False
            if alive:
                continue
            orphans = self.stored.pop(peer, [])
            for item in orphans:
                try:
                    new_owner = ring.successor_of_key(item.key, live_only=True)
                except EmptyPopulationError:
                    raise
                self.stored.setdefault(new_owner, []).append(item)
                moved += 1
        return moved

    def storage_gini(self) -> float:
        """Gini coefficient of per-peer item counts over storing peers."""
        counts = np.sort(np.array([len(v) for v in self.stored.values()], dtype=float))
        if counts.size == 0 or counts.sum() <= 0:
            return 0.0
        n = counts.size
        index = np.arange(1, n + 1, dtype=float)
        return float((2.0 * (index * counts).sum() / (n * counts.sum())) - (n + 1.0) / n)
