"""Degree-load metrics (paper Figure 1b).

The paper's heterogeneity metric is the *relative degree load* of each
peer — ``actual in-degree / available in-degree`` (``rho_max_in``) —
plotted over peers sorted by that ratio, plus the scalar "degree volume
exploitation": what fraction of the total contributed in-capacity the
construction managed to use (Oscar ≈ 85%, Mercury ≈ 61% at 10k peers).
"""

from __future__ import annotations

import numpy as np

__all__ = ["relative_degree_load", "volume_exploitation", "load_curve_points", "load_gini"]


def relative_degree_load(in_degrees: np.ndarray, in_caps: np.ndarray) -> np.ndarray:
    """Per-peer ``actual / available`` in-degree ratios, sorted ascending.

    Sorted so the curve is directly comparable across runs and matches
    the presentation of Figure 1(b) (peer index on x, ratio on y).
    """
    degrees = np.asarray(in_degrees, dtype=float)
    caps = np.asarray(in_caps, dtype=float)
    if degrees.shape != caps.shape:
        raise ValueError(f"shape mismatch: {degrees.shape} vs {caps.shape}")
    if degrees.size == 0:
        return np.empty(0)
    if (caps <= 0).any():
        raise ValueError("all in-degree caps must be positive")
    ratios = degrees / caps
    ratios.sort()
    return ratios


def volume_exploitation(in_degrees: np.ndarray, in_caps: np.ndarray) -> float:
    """Fraction of total contributed in-capacity actually used."""
    degrees = np.asarray(in_degrees, dtype=float)
    caps = np.asarray(in_caps, dtype=float)
    if degrees.shape != caps.shape:
        raise ValueError(f"shape mismatch: {degrees.shape} vs {caps.shape}")
    total = caps.sum()
    if total <= 0:
        raise ValueError("total in-capacity must be positive")
    return float(degrees.sum() / total)


def load_curve_points(ratios: np.ndarray, n_points: int = 100) -> list[tuple[float, float]]:
    """Down-sample a sorted ratio curve to ``n_points`` (x, y) pairs.

    x is the peer index (original scale, so curves from different
    network sizes overlay meaningfully), y the load ratio.
    """
    if n_points < 2:
        raise ValueError(f"n_points must be >= 2, got {n_points}")
    arr = np.asarray(ratios, dtype=float)
    if arr.size == 0:
        return []
    idx = np.unique(np.linspace(0, arr.size - 1, min(n_points, arr.size)).astype(int))
    return [(float(i), float(arr[i])) for i in idx]


def load_gini(ratios: np.ndarray) -> float:
    """Gini coefficient of the load ratios (0 = perfectly even).

    A scalar summary of Figure 1(b)'s "how similar are peers' relative
    loads" claim; the power-of-two ablation reports it.
    """
    arr = np.sort(np.asarray(ratios, dtype=float))
    if arr.size == 0:
        raise ValueError("no ratios supplied")
    total = arr.sum()
    if total <= 0:
        return 0.0
    n = arr.size
    index = np.arange(1, n + 1, dtype=float)
    return float((2.0 * (index * arr).sum() / (n * total)) - (n + 1.0) / n)
