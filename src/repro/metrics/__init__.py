"""Measurement layer: search cost, degree load, volume exploitation."""

from .degree_load import load_curve_points, load_gini, relative_degree_load, volume_exploitation
from .search import RoutableOverlay, measure_search_cost

__all__ = [
    "RoutableOverlay",
    "load_curve_points",
    "load_gini",
    "measure_search_cost",
    "relative_degree_load",
    "volume_exploitation",
]
