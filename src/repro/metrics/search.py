"""Search-cost measurement: the paper's primary performance metric.

"As the performance metric we chose the average search cost which was
induced by N random queries in the network." This module runs a query
batch against any overlay exposing the shared facade surface
(:class:`~repro.core.OscarOverlay` or
:class:`~repro.mercury.MercuryOverlay`) and folds it into
:class:`~repro.routing.RouteStats`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..ring import Ring
from ..routing import RouteResult, RouteStats, summarize_routes
from ..types import Key, NodeId
from ..workloads import QueryWorkload

__all__ = ["RoutableOverlay", "measure_search_cost"]


@runtime_checkable
class RoutableOverlay(Protocol):
    """The facade subset the measurement layer needs."""

    ring: Ring

    def route(
        self, source: NodeId, target_key: Key, faulty: bool = False, record_path: bool = False
    ) -> RouteResult: ...


def measure_search_cost(
    overlay: RoutableOverlay,
    rng: np.random.Generator,
    n_queries: int | None = None,
    workload: QueryWorkload | None = None,
    faulty: bool = False,
) -> RouteStats:
    """Average search cost of random queries against ``overlay``.

    Args:
        overlay: Any facade exposing ``ring`` and ``route``.
        rng: Query randomness (labelled stream per measurement round).
        n_queries: Number of queries; defaults to the live population
            size — exactly the paper's "N random queries".
        workload: Target selection policy (default: uniform over peers).
        faulty: Use the probing/backtracking router (required whenever
            the overlay contains crashed peers).
    """
    count = overlay.ring.live_count if n_queries is None else n_queries
    wl = workload if workload is not None else QueryWorkload()
    results = [
        overlay.route(query.source, query.target_key, faulty=faulty)
        for query in wl.generate(overlay.ring, rng, count)
    ]
    return summarize_routes(results)
