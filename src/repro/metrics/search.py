"""Search-cost measurement: the paper's primary performance metric.

"As the performance metric we chose the average search cost which was
induced by N random queries in the network." This module runs a query
batch against any overlay implementing the shared
:class:`~repro.core.substrate.Substrate` surface (Oscar, Chord or
Mercury) and folds it into :class:`~repro.routing.RouteStats`.

Since the batched query engine landed, the batch itself is evaluated by
:class:`~repro.engine.BatchQueryEngine` — thousands of routes per call
over numpy arrays — rather than one scalar ``route()`` at a time. The
results are bit-identical (the engine replays the greedy router's exact
rules and arithmetic); only the wall-clock changes. Callers that
measure the same overlay repeatedly (the growth harness) pass their own
engine so the topology snapshot is reused across measurement rounds.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..engine.batch import BatchQueryEngine
from ..ring import Ring
from ..routing import RouteResult, RouteStats
from ..types import Key, NodeId
from ..workloads import QueryWorkload

__all__ = ["RoutableOverlay", "measure_search_cost"]


@runtime_checkable
class RoutableOverlay(Protocol):
    """The facade subset the measurement layer needs."""

    ring: Ring

    def route(
        self, source: NodeId, target_key: Key, faulty: bool = False, record_path: bool = False
    ) -> RouteResult: ...


def measure_search_cost(
    overlay: RoutableOverlay,
    rng: np.random.Generator,
    n_queries: int | None = None,
    workload: QueryWorkload | None = None,
    faulty: bool = False,
    engine: BatchQueryEngine | None = None,
) -> RouteStats:
    """Average search cost of random queries against ``overlay``.

    Args:
        overlay: Any substrate exposing ``ring`` and ``route``.
        rng: Query randomness (labelled stream per measurement round).
        n_queries: Number of queries; defaults to the live population
            size — exactly the paper's "N random queries".
        workload: Target selection policy (default: uniform over peers).
        faulty: Use the probing/backtracking router (required whenever
            the overlay contains crashed peers).
        engine: A pre-built :class:`~repro.engine.BatchQueryEngine` to
            reuse (keeps its topology snapshot warm across rounds); one
            is constructed on the fly when omitted. Must wrap the same
            ``overlay`` being measured.
    """
    if engine is None:
        engine = BatchQueryEngine(overlay)  # type: ignore[arg-type]
    elif engine.substrate is not overlay:
        raise ValueError("engine wraps a different overlay than the one being measured")
    return engine.measure(rng, n_queries=n_queries, workload=workload, faulty=faulty)
