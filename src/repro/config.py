"""Frozen configuration dataclasses for overlays, routing and experiments.

Configurations are plain, immutable value objects: they carry only scalars
and enums (never live objects), validate themselves eagerly in
``__post_init__`` and can therefore be hashed, compared, logged and swept
over by the experiment harness. Distribution objects (key and degree
samplers) are passed separately wherever a config is consumed.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from .errors import ConfigError

__all__ = [
    "DEFAULT_SIZE_FLOOR",
    "SamplingMode",
    "OscarConfig",
    "MercuryConfig",
    "RoutingConfig",
    "GrowthConfig",
    "ChurnConfig",
]

#: The one floor rule for scaled network sizes, shared by
#: :meth:`GrowthConfig.scaled` and ``repro.experiments.base.scaled_sizes``:
#: a scaled measurement size never drops below this many peers (nor below
#: the growth seed population). 64 peers keeps even heavily miniaturized
#: runs above the seed ring and statistically meaningful, while staying
#: small enough for sub-second CI smoke runs.
DEFAULT_SIZE_FLOOR = 64


class SamplingMode(enum.Enum):
    """Fidelity of the subpopulation sampling used for median estimation.

    ORACLE
        Exact medians computed over the true subpopulation. No sampling
        noise; used for invariant tests and as an upper-bound ablation.
    UNIFORM
        ``sample_size`` i.i.d. uniform draws from the restricted
        subpopulation — the stationary outcome of a well-mixed
        Metropolis-Hastings random walk. The default for experiments.
    WALK
        An explicit random walk over overlay links that refuses to step
        outside the subpopulation's key range (the paper's Mercury-style
        restricted walker), collecting every ``walk_hops``-th node.
    """

    ORACLE = "oracle"
    UNIFORM = "uniform"
    WALK = "walk"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class OscarConfig:
    """Parameters of the Oscar overlay construction (paper §2).

    Attributes:
        n_partitions: Number of logarithmic partitions each node maintains.
            ``0`` means "auto": ``ceil(log2(N))`` at (re)wiring time, the
            paper's ``log_a N`` with ``a = 2``.
        sample_size: Samples drawn per median estimate. The paper reports
            that "very low sample sizes" suffice; 16 is our default.
        sampling_mode: See :class:`SamplingMode`.
        walk_hops: Steps between collected samples in ``WALK`` mode (mixing
            time knob).
        power_of_two: Draw two candidate neighbors per long link and keep
            the one with the lower current in-degree ("power of two random
            choices", paper §3). Disabling this is the ABL-P2 ablation.
        link_retries: How many times a peer redraws (partition, candidate)
            after all candidates of a draw refused before giving up on that
            out-link slot.
        respect_out_caps: Whether peers stop at ``rho_max_out`` links
            (always true in the paper; exposed for ablations).
    """

    n_partitions: int = 0
    sample_size: int = 16
    sampling_mode: SamplingMode = SamplingMode.UNIFORM
    walk_hops: int = 8
    power_of_two: bool = True
    link_retries: int = 8
    respect_out_caps: bool = True

    def __post_init__(self) -> None:
        _require(self.n_partitions >= 0, f"n_partitions must be >= 0, got {self.n_partitions}")
        _require(self.sample_size >= 1, f"sample_size must be >= 1, got {self.sample_size}")
        _require(isinstance(self.sampling_mode, SamplingMode), "sampling_mode must be a SamplingMode")
        _require(self.walk_hops >= 1, f"walk_hops must be >= 1, got {self.walk_hops}")
        _require(self.link_retries >= 0, f"link_retries must be >= 0, got {self.link_retries}")

    def partitions_for(self, population: int) -> int:
        """Resolve the partition count for a network of ``population`` peers."""
        _require(population >= 1, f"population must be >= 1, got {population}")
        if self.n_partitions:
            return self.n_partitions
        return max(1, math.ceil(math.log2(max(2, population))))

    def with_mode(self, mode: SamplingMode) -> "OscarConfig":
        """Return a copy with a different sampling mode (ablation helper)."""
        return replace(self, sampling_mode=mode)


@dataclass(frozen=True)
class MercuryConfig:
    """Parameters of the Mercury baseline (Bharambe et al., SIGCOMM'04).

    Attributes:
        sample_size: Uniform node-position samples each peer draws to build
            its density histogram. The default 192 matches Oscar's total
            per-peer budget (16 samples x ~12 median levels) so the
            comparison isolates *how* the budget is spent, not its size.
        histogram_buckets: Equi-width buckets of the rank->key estimator.
            Mercury learns the distribution at a *uniform* resolution —
            exactly the property the paper argues fails on arbitrary
            distributions. 64 buckets is deliberately generous.
        link_retries: Redraws after a refused link (same acceptance rule as
            Oscar but a single candidate per draw — no power of two).
    """

    sample_size: int = 192
    histogram_buckets: int = 64
    link_retries: int = 8

    def __post_init__(self) -> None:
        _require(self.sample_size >= 2, f"sample_size must be >= 2, got {self.sample_size}")
        _require(self.histogram_buckets >= 1, f"histogram_buckets must be >= 1, got {self.histogram_buckets}")
        _require(self.link_retries >= 0, f"link_retries must be >= 0, got {self.link_retries}")


@dataclass(frozen=True)
class RoutingConfig:
    """Parameters of greedy routing and its fault-aware variant (paper §3).

    Attributes:
        budget: Maximum messages (hops + probes + backtracks) per query
            before the route is abandoned.
        probe_cost: Messages charged for discovering that a neighbor is
            dead (a timed-out probe). The paper counts this as "wasted"
            traffic; 1 is the natural unit.
        backtrack_cost: Messages charged for returning to the previous hop
            when a node has no live improving neighbor.
    """

    budget: int = 10_000
    probe_cost: int = 1
    backtrack_cost: int = 1

    def __post_init__(self) -> None:
        _require(self.budget >= 1, f"budget must be >= 1, got {self.budget}")
        _require(self.probe_cost >= 0, f"probe_cost must be >= 0, got {self.probe_cost}")
        _require(self.backtrack_cost >= 0, f"backtrack_cost must be >= 0, got {self.backtrack_cost}")


@dataclass(frozen=True)
class GrowthConfig:
    """Bootstrap-and-grow harness parameters (paper §3, first paragraph).

    The network starts from ``seed_size`` peers wired into a ring, grows by
    joins to each size in ``measure_sizes``; at each measured size all
    peers re-estimate partitions and rewire their long links, then average
    search cost is measured over ``n_queries`` random queries —
    ``n_queries = 0`` (the default) means "as many queries as live peers",
    the paper's "N random queries".
    """

    seed_size: int = 16
    measure_sizes: tuple[int, ...] = (2000, 4000, 6000, 8000, 10000)
    n_queries: int = 0
    seed: int = 42

    def __post_init__(self) -> None:
        _require(self.seed_size >= 2, f"seed_size must be >= 2, got {self.seed_size}")
        _require(len(self.measure_sizes) >= 1, "measure_sizes must not be empty")
        _require(
            all(s >= self.seed_size for s in self.measure_sizes),
            "every measure size must be >= seed_size",
        )
        _require(
            tuple(sorted(self.measure_sizes)) == tuple(self.measure_sizes),
            "measure_sizes must be sorted ascending",
        )
        _require(self.n_queries >= 0, f"n_queries must be >= 0, got {self.n_queries}")

    @property
    def final_size(self) -> int:
        """The largest measured network size."""
        return self.measure_sizes[-1]

    def queries_at(self, size: int) -> int:
        """Queries to issue at a measured ``size`` (paper: one per peer)."""
        return size if self.n_queries == 0 else self.n_queries

    def scaled(self, factor: float) -> "GrowthConfig":
        """Return a proportionally smaller/larger copy (benchmark helper).

        Sizes are scaled and deduplicated while preserving order. The floor
        rule is shared with ``repro.experiments.base.scaled_sizes``: no
        scaled size drops below ``max(seed_size, DEFAULT_SIZE_FLOOR)``.
        The query count is scaled with its own floor of 50.
        """
        _require(factor > 0, f"factor must be > 0, got {factor}")
        floor = max(self.seed_size, DEFAULT_SIZE_FLOOR)
        sizes: list[int] = []
        for s in self.measure_sizes:
            scaled_size = max(floor, int(round(s * factor)))
            if not sizes or scaled_size > sizes[-1]:
                sizes.append(scaled_size)
        scaled_queries = self.n_queries if self.n_queries == 0 else max(50, int(round(self.n_queries * factor)))
        return replace(self, measure_sizes=tuple(sizes), n_queries=scaled_queries)


@dataclass(frozen=True)
class ChurnConfig:
    """Failure-injection parameters (paper §3, "Oscar under churn").

    Attributes:
        kill_fraction: Fraction of the population crashed simultaneously
            (paper: 0.10 and 0.33).
        repair_ring: Apply the Chord-style ring repair the paper assumes
            ("the ring structure was preserved by the devised
            self-stabilizing techniques").
        seed: Stream label for selecting victims.
    """

    kill_fraction: float = 0.0
    repair_ring: bool = True
    seed: int = 7

    def __post_init__(self) -> None:
        _require(0.0 <= self.kill_fraction < 1.0, f"kill_fraction must be in [0, 1), got {self.kill_fraction}")

    @property
    def is_faulty(self) -> bool:
        """True when any peers are crashed at all."""
        return self.kill_fraction > 0.0


# Paper-default experiment shapes, importable by benches and the CLI.
PAPER_GROWTH = GrowthConfig()
PAPER_CHURN_CASES: tuple[ChurnConfig, ...] = (
    ChurnConfig(kill_fraction=0.0),
    ChurnConfig(kill_fraction=0.10),
    ChurnConfig(kill_fraction=0.33),
)
